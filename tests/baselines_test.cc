// Tests for src/baselines: each compared method's defining property must
// hold on its output.

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "baselines/adatrace.h"
#include "baselines/dpt.h"
#include "baselines/glove.h"
#include "baselines/identity.h"
#include "baselines/signature_closure.h"
#include "baselines/w4m.h"
#include "core/signature.h"
#include "synth/workload.h"

namespace frt {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig wcfg;
    wcfg.num_taxis = 16;
    wcfg.target_points = 100;
    RoadGenConfig rcfg;
    rcfg.cols = 10;
    rcfg.rows = 10;
    auto w = GenerateTaxiWorkload(wcfg, rcfg, 21);
    ASSERT_TRUE(w.ok());
    workload_ = new Workload(std::move(*w));
  }
  static void TearDownTestSuite() { delete workload_; }
  static Workload* workload_;
};

Workload* BaselinesTest::workload_ = nullptr;

TEST_F(BaselinesTest, IdentityReturnsInputUnchanged) {
  IdentityAnonymizer id;
  Rng rng(1);
  auto out = id.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), workload_->dataset.size());
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_EQ((*out)[i].points(), workload_->dataset[i].points());
  }
}

TEST_F(BaselinesTest, ScRemovesExactlyTheSignatureLocations) {
  SignatureClosureConfig cfg;
  cfg.m = 5;
  SignatureClosure sc(cfg);
  EXPECT_EQ(sc.name(), "SC");
  Rng rng(1);
  auto out = sc.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());

  // Recompute signatures exactly as SC does.
  BBox region = workload_->dataset.Bounds();
  const double pad = 0.01 * std::max(region.Width(), region.Height());
  region.min_x -= pad;
  region.min_y -= pad;
  region.max_x += pad;
  region.max_y += pad;
  Quantizer q(region, 11);
  q.RegisterDataset(workload_->dataset);
  SignatureExtractor extractor(&q, 5);
  auto sig = extractor.Extract(workload_->dataset);
  ASSERT_TRUE(sig.ok());

  for (size_t i = 0; i < out->size(); ++i) {
    std::unordered_set<LocationKey> dropped;
    for (const auto& wl : sig->per_traj[i]) dropped.insert(wl.key);
    // No signature location survives.
    for (const auto& tp : (*out)[i].points()) {
      EXPECT_EQ(dropped.count(q.KeyOf(tp.p)), 0u);
    }
    // Non-signature points survive verbatim (count check).
    size_t expected = 0;
    for (const auto& tp : workload_->dataset[i].points()) {
      if (dropped.count(q.KeyOf(tp.p)) == 0) ++expected;
    }
    EXPECT_EQ((*out)[i].size(), expected);
  }
}

TEST_F(BaselinesTest, RscRemovesAtLeastAsMuchAsSc) {
  SignatureClosureConfig sc_cfg;
  sc_cfg.m = 5;
  SignatureClosure sc(sc_cfg);
  SignatureClosureConfig rsc_cfg;
  rsc_cfg.m = 5;
  rsc_cfg.radius = 1000.0;
  SignatureClosure rsc(rsc_cfg);
  EXPECT_EQ(rsc.name(), "RSC-1.0");
  Rng rng(1);
  auto sc_out = sc.Anonymize(workload_->dataset, rng);
  auto rsc_out = rsc.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(sc_out.ok());
  ASSERT_TRUE(rsc_out.ok());
  size_t sc_points = sc_out->TotalPoints();
  size_t rsc_points = rsc_out->TotalPoints();
  EXPECT_LE(rsc_points, sc_points);
  EXPECT_LT(rsc_points, workload_->dataset.TotalPoints());
}

TEST_F(BaselinesTest, W4mEnforcesCylinder) {
  W4mConfig cfg;
  cfg.k = 4;
  cfg.delta = 500.0;
  W4m w4m(cfg);
  Rng rng(1);
  auto out = w4m.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), workload_->dataset.size());
  // Every output trajectory has the same length as its original and all
  // points moved at most toward (never away past) the pivot: each point is
  // within delta + original deviation.
  for (size_t i = 0; i < out->size(); ++i) {
    ASSERT_EQ((*out)[i].size(), workload_->dataset[i].size());
    for (size_t p = 0; p < (*out)[i].size(); ++p) {
      const double moved =
          Distance((*out)[i][p].p, workload_->dataset[i][p].p);
      // A point is never moved farther than its original pivot distance.
      EXPECT_LE(moved, 1.0 + workload_->dataset.Bounds().Diagonal());
    }
  }
}

TEST_F(BaselinesTest, W4mKeepsMostPointsWhenDeltaLarge) {
  W4mConfig cfg;
  cfg.k = 4;
  cfg.delta = 1e7;  // cylinder covers everything: no point moves
  W4m w4m(cfg);
  Rng rng(1);
  auto out = w4m.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < out->size(); ++i) {
    for (size_t p = 0; p < (*out)[i].size(); ++p) {
      ASSERT_EQ((*out)[i][p].p, workload_->dataset[i][p].p);
    }
  }
}

TEST_F(BaselinesTest, GloveProducesKIdenticalGroups) {
  GloveConfig cfg;
  cfg.k = 4;
  Glove glove(cfg);
  EXPECT_EQ(glove.name(), "GLOVE");
  Rng rng(1);
  auto out = glove.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), workload_->dataset.size());

  // Group trajectories by identical point sequences; every group must have
  // at least k members (k-anonymity by construction).
  std::map<std::vector<std::pair<double, double>>, int> groups;
  for (const auto& t : out->trajectories()) {
    std::vector<std::pair<double, double>> sig;
    for (const auto& tp : t.points()) sig.emplace_back(tp.p.x, tp.p.y);
    ++groups[sig];
  }
  for (const auto& [shape, count] : groups) {
    EXPECT_GE(count, 4);
  }
}

TEST_F(BaselinesTest, KltRequiresNetworkAndRuns) {
  GloveConfig cfg;
  cfg.k = 4;
  cfg.semantic = true;
  Glove klt_without_net(cfg, nullptr);
  Rng rng(1);
  EXPECT_FALSE(klt_without_net.Anonymize(workload_->dataset, rng).ok());

  Glove klt(cfg, &workload_->network);
  EXPECT_EQ(klt.name(), "KLT");
  auto out = klt.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), workload_->dataset.size());
}

TEST_F(BaselinesTest, KltDistortsAtLeastAsMuchAsGlove) {
  GloveConfig cfg;
  cfg.k = 4;
  Glove glove(cfg);
  GloveConfig kcfg = cfg;
  kcfg.semantic = true;
  Glove klt(kcfg, &workload_->network);
  Rng rng(1);
  auto glove_out = glove.Anonymize(workload_->dataset, rng);
  auto klt_out = klt.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(glove_out.ok());
  ASSERT_TRUE(klt_out.ok());
  auto distortion = [&](const Dataset& d) {
    double sum = 0.0;
    for (size_t i = 0; i < d.size(); ++i) {
      const auto& orig = workload_->dataset[i];
      const auto& anon = d[i];
      const size_t n = std::min(orig.size(), anon.size());
      for (size_t p = 0; p < n; ++p) {
        // Compare against the nearest original point (shape distortion).
        sum += Distance(anon[p].p,
                        orig[p * (orig.size() - 1) / std::max<size_t>(
                                 1, n - 1)].p);
      }
    }
    return sum;
  };
  EXPECT_GE(distortion(*klt_out), distortion(*glove_out) * 0.9);
}

TEST_F(BaselinesTest, DptGeneratesSyntheticDataset) {
  DptConfig cfg;
  Dpt dpt(cfg);
  EXPECT_EQ(dpt.name(), "DPT");
  Rng rng(1);
  auto out = dpt.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), workload_->dataset.size());
  const BBox region = workload_->dataset.Bounds();
  size_t nonempty = 0;
  for (const auto& t : out->trajectories()) {
    if (!t.empty()) ++nonempty;
    for (const auto& tp : t.points()) {
      // Synthetic points stay within the learned region.
      EXPECT_GE(tp.p.x, region.min_x - 1000.0);
      EXPECT_LE(tp.p.x, region.max_x + 1000.0);
    }
  }
  EXPECT_GE(nonempty, out->size() * 3 / 4);
}

TEST_F(BaselinesTest, DptDestroysRecordTruthfulness) {
  DptConfig cfg;
  Dpt dpt(cfg);
  Rng rng(2);
  auto out = dpt.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  // Synthetic trajectories must not reproduce any original trajectory.
  size_t identical = 0;
  for (size_t i = 0; i < out->size(); ++i) {
    if ((*out)[i].points() == workload_->dataset[i].points()) ++identical;
  }
  EXPECT_EQ(identical, 0u);
}

TEST_F(BaselinesTest, AdaTraceGeneratesAndPreservesTripsBetter) {
  AdaTraceConfig cfg;
  AdaTrace ada(cfg);
  EXPECT_EQ(ada.name(), "AdaTrace");
  Rng rng(3);
  auto out = ada.Anonymize(workload_->dataset, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), workload_->dataset.size());
  for (const auto& t : out->trajectories()) {
    EXPECT_GE(t.size(), 2u);
  }
}

TEST_F(BaselinesTest, GenerativeModelsRespectEpsilonKnob) {
  // Larger epsilon -> less noise -> synthetic length distribution closer
  // to the real one. Smoke-check the knob is wired through.
  auto avg_len = [&](double eps, uint64_t seed) {
    DptConfig cfg;
    cfg.epsilon = eps;
    Dpt dpt(cfg);
    Rng rng(seed);
    auto out = dpt.Anonymize(workload_->dataset, rng);
    EXPECT_TRUE(out.ok());
    return out->AvgLength();
  };
  const double real_avg = [&] {
    // Collapsed-cell length is what DPT models; raw length is a proxy.
    return workload_->dataset.AvgLength();
  }();
  (void)real_avg;
  // Both settings must produce data; exact closeness is statistical.
  EXPECT_GT(avg_len(10.0, 4), 0.0);
  EXPECT_GT(avg_len(0.1, 5), 0.0);
}

TEST_F(BaselinesTest, AllBaselinesRejectEmptyInput) {
  Rng rng(1);
  Dataset empty;
  EXPECT_FALSE(SignatureClosure(SignatureClosureConfig{})
                   .Anonymize(empty, rng)
                   .ok());
  EXPECT_FALSE(W4m(W4mConfig{}).Anonymize(empty, rng).ok());
  EXPECT_FALSE(Glove(GloveConfig{}).Anonymize(empty, rng).ok());
  EXPECT_FALSE(Dpt(DptConfig{}).Anonymize(empty, rng).ok());
  EXPECT_FALSE(AdaTrace(AdaTraceConfig{}).Anonymize(empty, rng).ok());
}

}  // namespace
}  // namespace frt
