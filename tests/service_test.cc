// Unit and end-to-end coverage of the multi-feed serving layer
// (src/service): routing and per-feed window order, count/deadline/final
// closure, idle eviction with budget carry, abort paths, and determinism
// across pool sizes.

#include "service/dispatcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stream/ingest.h"
#include "testing_util.h"

namespace frt {
namespace {

using frt::testing::ServiceCapture;
using frt::testing::SyntheticCsv;
using std::chrono::milliseconds;

constexpr uint64_t kSeed = 20260730;

ServiceConfig SmallServiceConfig(size_t window) {
  ServiceConfig config;
  config.stream.window_size = window;
  config.stream.batch.shards = 2;
  config.stream.batch.pipeline.m = 3;
  config.stream.batch.pipeline.epsilon_global = 0.5;
  config.stream.batch.pipeline.epsilon_local = 0.5;
  config.pool_threads = 2;
  return config;
}

/// Parses the deterministic synthetic CSV into ready-to-offer
/// trajectories.
std::vector<Trajectory> SyntheticTrajectories(int arrivals) {
  std::istringstream in(SyntheticCsv(arrivals));
  std::vector<Trajectory> out;
  TrajectoryReader reader(in);
  for (;;) {
    auto next = reader.Next();
    EXPECT_TRUE(next.ok());
    if (!next->has_value()) break;
    out.push_back(std::move(**next));
  }
  return out;
}

TEST(ServiceTest, MultiplexedFeedsPublishEveryWindowPerFeedInOrder) {
  const std::vector<std::string> feed_names = {"alpha", "beta", "gamma",
                                               "delta"};
  const std::vector<Trajectory> trajs = SyntheticTrajectories(60);
  ServiceCapture capture;
  ServiceDispatcher service(SmallServiceConfig(20), capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  // Round-robin interleave: every feed receives the same 60 arrivals.
  for (const Trajectory& t : trajs) {
    for (const auto& feed : feed_names) {
      ASSERT_TRUE(service.Offer(feed, t));
    }
  }
  ASSERT_TRUE(service.Finish().ok());

  const ServiceReport& report = service.report();
  EXPECT_EQ(report.feeds, 4u);
  EXPECT_EQ(report.sessions_created, 4u);
  EXPECT_EQ(report.peak_active_sessions, 4u);
  EXPECT_EQ(report.sessions_evicted, 0u);
  EXPECT_EQ(report.windows_published, 12u);  // 3 per feed
  EXPECT_EQ(report.windows_refused, 0u);
  EXPECT_EQ(report.trajectories_in, 240u);
  EXPECT_EQ(report.trajectories_published, 240u);
  ASSERT_EQ(report.feeds_report.size(), 4u);
  for (const FeedReport& feed : report.feeds_report) {
    EXPECT_EQ(feed.sessions, 1u);
    EXPECT_EQ(feed.stream.windows_published, 3u);
    EXPECT_EQ(feed.stream.trajectories_published, 60u);
    // Per-feed latency detail mirrors the service-wide fields: ordered
    // quantiles, and no feed's max can exceed the service-wide max.
    EXPECT_GT(feed.close_wait_max_ms, 0.0);
    EXPECT_GT(feed.publish_max_ms, 0.0);
    EXPECT_LE(feed.close_wait_p50_ms, feed.close_wait_p99_ms);
    EXPECT_LE(feed.close_wait_p99_ms, feed.close_wait_max_ms + 1e-9);
    EXPECT_LE(feed.publish_p50_ms, feed.publish_p99_ms);
    EXPECT_LE(feed.publish_p99_ms, feed.publish_max_ms + 1e-9);
    EXPECT_LE(feed.close_wait_max_ms, report.close_wait_max_ms + 1e-9);
    EXPECT_LE(feed.publish_max_ms, report.publish_max_ms + 1e-9);
  }
  for (const auto& feed : feed_names) {
    const ServiceCapture::Feed& captured = capture.feeds.at(feed);
    ASSERT_EQ(captured.ids.size(), 60u) << feed;
    // Per-feed window order: ids concatenate back to arrival order.
    for (int i = 0; i < 60; ++i) EXPECT_EQ(captured.ids[i], i) << feed;
    ASSERT_EQ(captured.reports.size(), 3u);
    for (size_t w = 0; w < 3; ++w) {
      EXPECT_EQ(captured.reports[w].index, w) << feed;
      EXPECT_EQ(captured.reports[w].close_reason, WindowClose::kCount);
      EXPECT_NEAR(captured.reports[w].epsilon_spent, 1.0, 1e-9);
    }
  }
}

TEST(ServiceTest, DeterministicAcrossPoolSizes) {
  const std::vector<Trajectory> trajs = SyntheticTrajectories(40);
  auto run = [&](unsigned pool_threads) {
    auto capture = std::make_unique<ServiceCapture>();
    ServiceConfig config = SmallServiceConfig(10);
    config.pool_threads = pool_threads;
    ServiceDispatcher service(config, capture->MakeSink());
    EXPECT_TRUE(service.Start(kSeed).ok());
    for (const Trajectory& t : trajs) {
      for (const char* feed : {"f1", "f2", "f3"}) {
        EXPECT_TRUE(service.Offer(feed, t));
      }
    }
    EXPECT_TRUE(service.Finish().ok());
    return capture;
  };
  const auto base = run(1);
  for (const unsigned pool : {2u, 4u}) {
    const auto other = run(pool);
    for (const char* feed : {"f1", "f2", "f3"}) {
      EXPECT_TRUE(ServiceCapture::FeedsEqual(base->feeds.at(feed),
                                             other->feeds.at(feed)))
          << "feed " << feed << " differs at pool=" << pool;
    }
  }
}

TEST(ServiceTest, DeadlineClosesPartialWindowBeforeInputEnds) {
  // window_size 100 would never fill; the 60 ms deadline must close and
  // publish the 5 buffered arrivals while the service is still running.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(5);
  ServiceCapture capture;
  ServiceConfig config = SmallServiceConfig(100);
  config.stream.close_after_ms = 60;
  ServiceDispatcher service(config, capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  for (const Trajectory& t : trajs) ASSERT_TRUE(service.Offer("live", t));
  // The input is NOT finished: the only way this window publishes within
  // 5 s is the deadline timer.
  ASSERT_TRUE(capture.WaitForWindows(1, milliseconds(5000)));
  {
    std::lock_guard<std::mutex> lock(capture.mu);
    const ServiceCapture::Feed& feed = capture.feeds.at("live");
    ASSERT_EQ(feed.reports.size(), 1u);
    EXPECT_EQ(feed.reports[0].close_reason, WindowClose::kDeadline);
    EXPECT_EQ(feed.reports[0].trajectories, 5u);
    // The close honored the SLO: waited at least the armed delay, and not
    // wildly past the deadline.
    EXPECT_GT(feed.reports[0].close_wait_ms, 10.0);
  }
  ASSERT_TRUE(service.Finish().ok());
  EXPECT_EQ(service.report().windows_deadline_closed, 1u);
  EXPECT_EQ(service.report().windows_published, 1u);
}

TEST(ServiceTest, IdleEvictionFlushesSessionAndCarriesBudgetIntoRevival) {
  // Wholesale budget of 1.0 at eps 1.0/window: generation 1 publishes its
  // flushed window and exhausts the budget; the revived generation 2 must
  // inherit that spend and refuse its window.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(6);
  ServiceCapture capture;
  ServiceConfig config = SmallServiceConfig(100);
  config.stream.accounting = BudgetAccounting::kWholesale;
  config.stream.total_budget = 1.0;
  config.idle_evict_ms = 50;
  ServiceDispatcher service(config, capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.Offer("taxi", trajs[i]));
  // Idle long enough for the eviction sweep to flush and tear down.
  ASSERT_TRUE(capture.WaitForWindows(1, milliseconds(5000)));
  std::this_thread::sleep_for(milliseconds(150));
  // Revive the feed with fresh arrivals.
  for (int i = 3; i < 6; ++i) ASSERT_TRUE(service.Offer("taxi", trajs[i]));
  ASSERT_TRUE(service.Finish().ok());

  const ServiceReport& report = service.report();
  EXPECT_GE(report.sessions_evicted, 1u);
  ASSERT_EQ(report.feeds_report.size(), 1u);
  const FeedReport& feed = report.feeds_report[0];
  EXPECT_GE(feed.sessions, 2u);
  EXPECT_EQ(feed.stream.windows_published, 1u);  // generation 1's flush
  EXPECT_EQ(feed.stream.windows_refused, 1u);    // generation 2, carried
  EXPECT_NEAR(feed.stream.epsilon_spent, 1.0, 1e-9);
  EXPECT_TRUE(ServiceHadRefusals(report));
}

TEST(ServiceTest, WindowIndicesContinueAcrossSessionGenerations) {
  // Generation 1 publishes window 0 (idle-eviction flush); the revived
  // generation 2's window must be index 1, not a second index 0.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(6);
  ServiceCapture capture;
  ServiceConfig config = SmallServiceConfig(100);
  config.idle_evict_ms = 50;
  ServiceDispatcher service(config, capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.Offer("gen", trajs[i]));
  ASSERT_TRUE(capture.WaitForWindows(1, std::chrono::milliseconds(5000)));
  std::this_thread::sleep_for(milliseconds(150));
  for (int i = 3; i < 6; ++i) ASSERT_TRUE(service.Offer("gen", trajs[i]));
  ASSERT_TRUE(service.Finish().ok());
  const ServiceCapture::Feed& feed = capture.feeds.at("gen");
  ASSERT_EQ(feed.reports.size(), 2u);
  EXPECT_EQ(feed.reports[0].index, 0u);
  EXPECT_EQ(feed.reports[1].index, 1u);
  ASSERT_EQ(service.report().feeds_report.size(), 1u);
  EXPECT_GE(service.report().feeds_report[0].sessions, 2u);
}

TEST(ServiceTest, StopWhenExhaustedEndsServiceAtFirstRefusal) {
  // Wholesale budget 1.0 at eps 1.0/window: window 0 publishes, window 1
  // is refused, and the service must then stop ingesting (Offer fails)
  // instead of refusing windows forever.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(60);
  ServiceCapture capture;
  ServiceConfig config = SmallServiceConfig(5);
  config.stream.accounting = BudgetAccounting::kWholesale;
  config.stream.total_budget = 1.0;
  config.stream.stop_when_exhausted = true;
  config.arrival_queue_capacity = 4;
  ServiceDispatcher service(config, capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  // An effectively endless feed: recycle the 60 ids round after round
  // (window-aligned, so ids stay unique within each window of 5). Only
  // the stop can end this loop early.
  bool stopped = false;
  for (int round = 0; round < 500 && !stopped; ++round) {
    for (const Trajectory& t : trajs) {
      if (!service.Offer("endless", t)) {
        stopped = true;
        break;
      }
    }
  }
  EXPECT_TRUE(stopped) << "service never stopped ingesting";
  ASSERT_TRUE(service.Finish().ok());  // a clean stop, not an error
  const ServiceReport& report = service.report();
  EXPECT_EQ(report.windows_published, 1u);
  EXPECT_GE(report.windows_refused, 1u);
  EXPECT_TRUE(ServiceHadRefusals(report));
}

TEST(ServiceTest, PerFeedBudgetsAreIndependentLedgers) {
  // Both feeds get the same wholesale budget of 2.0; each publishes 2 of
  // its 3 windows — proof the ledger is per feed, not shared.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(30);
  ServiceCapture capture;
  ServiceConfig config = SmallServiceConfig(10);
  config.stream.accounting = BudgetAccounting::kWholesale;
  config.stream.total_budget = 2.0;
  ServiceDispatcher service(config, capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  for (const Trajectory& t : trajs) {
    ASSERT_TRUE(service.Offer("a", t));
    ASSERT_TRUE(service.Offer("b", t));
  }
  ASSERT_TRUE(service.Finish().ok());
  for (const FeedReport& feed : service.report().feeds_report) {
    EXPECT_EQ(feed.stream.windows_published, 2u) << feed.feed;
    EXPECT_EQ(feed.stream.windows_refused, 1u) << feed.feed;
    EXPECT_NEAR(feed.stream.epsilon_spent, 2.0, 1e-9) << feed.feed;
  }
}

TEST(ServiceTest, BacklogCapPausesIngressButPublishesEverything) {
  // With the tightest possible caps the dispatcher must repeatedly pause
  // ingress (arrival queue fills, Offer blocks) and still publish every
  // window of every feed in order.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(60);
  ServiceCapture capture;
  ServiceConfig config = SmallServiceConfig(5);
  config.max_in_flight = 1;
  config.max_backlog_windows = 1;
  config.arrival_queue_capacity = 4;
  ServiceDispatcher service(config, capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  for (const Trajectory& t : trajs) {
    ASSERT_TRUE(service.Offer("a", t));
    ASSERT_TRUE(service.Offer("b", t));
  }
  ASSERT_TRUE(service.Finish().ok());
  EXPECT_EQ(service.report().windows_published, 24u);  // 12 per feed
  EXPECT_EQ(service.report().trajectories_published, 120u);
  for (const char* feed : {"a", "b"}) {
    const ServiceCapture::Feed& captured = capture.feeds.at(feed);
    ASSERT_EQ(captured.ids.size(), 60u);
    for (int i = 0; i < 60; ++i) EXPECT_EQ(captured.ids[i], i) << feed;
  }
}

TEST(ServiceTest, DuplicateObjectIdWithinFeedWindowQuarantinesOnlyThatFeed) {
  // A per-feed fault (duplicate id inside one window) must quarantine that
  // feed, not abort the service: Finish() returns OK, the sibling feed
  // publishes everything, and the report names the quarantined feed.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(20);
  ServiceCapture capture;
  ServiceDispatcher service(SmallServiceConfig(10), capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  ASSERT_TRUE(service.Offer("dup", trajs[0]));
  service.Offer("dup", trajs[0]);  // same id, same window -> feed fault
  for (const Trajectory& t : trajs) ASSERT_TRUE(service.Offer("ok", t));
  const Status st = service.Finish();
  EXPECT_TRUE(st.ok()) << st.ToString();

  const ServiceReport& report = service.report();
  EXPECT_EQ(report.feeds_quarantined, 1u);
  bool saw_dup = false;
  bool saw_ok = false;
  for (const FeedReport& feed : report.feeds_report) {
    if (feed.feed == "dup") {
      saw_dup = true;
      EXPECT_TRUE(feed.quarantined);
      EXPECT_FALSE(feed.quarantine_reason.empty());
      EXPECT_EQ(feed.stream.windows_published, 0u);
    } else if (feed.feed == "ok") {
      saw_ok = true;
      EXPECT_FALSE(feed.quarantined);
      EXPECT_EQ(feed.stream.windows_published, 2u);
      EXPECT_EQ(feed.stream.trajectories_published, 20u);
    }
  }
  EXPECT_TRUE(saw_dup);
  EXPECT_TRUE(saw_ok);
  EXPECT_EQ(capture.feeds.at("ok").ids.size(), 20u);
}

TEST(ServiceTest, OfferQuarantineTearsDownFeedAndKeepsSiblingsRunning) {
  // External quarantine (the ingress tier reporting an untrusted stream)
  // rides the arrival queue: everything the feed offered before the
  // quarantine marker is discarded with its backlog, later offers for the
  // feed are dropped, and sibling feeds are untouched.
  const std::vector<Trajectory> trajs = SyntheticTrajectories(20);
  ServiceCapture capture;
  ServiceDispatcher service(SmallServiceConfig(10), capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Offer("bad", trajs[static_cast<size_t>(i)]));
  }
  ASSERT_TRUE(service.OfferQuarantine("bad", "frame CRC mismatch"));
  for (const Trajectory& t : trajs) ASSERT_TRUE(service.Offer("good", t));
  // Arrivals after the quarantine marker must be ignored, not revive the
  // feed.
  service.Offer("bad", trajs[6]);
  const Status st = service.Finish();
  EXPECT_TRUE(st.ok()) << st.ToString();

  const ServiceReport& report = service.report();
  EXPECT_EQ(report.feeds_quarantined, 1u);
  for (const FeedReport& feed : report.feeds_report) {
    if (feed.feed == "bad") {
      EXPECT_TRUE(feed.quarantined);
      EXPECT_EQ(feed.quarantine_reason, "frame CRC mismatch");
      EXPECT_EQ(feed.stream.windows_published, 0u);
    } else {
      EXPECT_FALSE(feed.quarantined);
    }
  }
  EXPECT_EQ(capture.feeds.count("bad"), 0u);
  EXPECT_EQ(capture.feeds.at("good").ids.size(), 20u);
}

TEST(ServiceTest, SubmitRotationStaysFairAcrossFeeds) {
  // With one worker and one in-flight slot, window submission is the
  // round-robin scan in SubmitReady. No feed may lap the others: at every
  // prefix of the global publish sequence the per-feed publish counts stay
  // within a small constant of each other (a starvation bug — e.g. the
  // scan always restarting at slot 0 — would let one feed publish its
  // whole backlog first).
  const std::vector<std::string> feed_names = {"f0", "f1", "f2", "f3",
                                               "f4", "f5", "f6", "f7"};
  const std::vector<Trajectory> trajs = SyntheticTrajectories(16);
  ServiceConfig config = SmallServiceConfig(4);  // 4 windows per feed
  config.pool_threads = 1;
  config.max_in_flight = 1;
  std::mutex mu;
  std::vector<std::string> publish_sequence;
  ServiceDispatcher service(
      config, [&](const std::string& feed, const Dataset&,
                  const WindowReport&) -> Status {
        std::lock_guard<std::mutex> lock(mu);
        publish_sequence.push_back(feed);
        return Status::OK();
      });
  ASSERT_TRUE(service.Start(kSeed).ok());
  // Interleaved arrivals: every feed's backlog grows in lockstep.
  for (const Trajectory& t : trajs) {
    for (const auto& feed : feed_names) ASSERT_TRUE(service.Offer(feed, t));
  }
  ASSERT_TRUE(service.Finish().ok());
  ASSERT_EQ(publish_sequence.size(), feed_names.size() * 4);
  std::map<std::string, size_t> counts;
  for (const std::string& feed : publish_sequence) {
    ++counts[feed];
    size_t min_count = publish_sequence.size();
    size_t max_count = 0;
    for (const auto& name : feed_names) {
      const auto it = counts.find(name);
      const size_t c = it == counts.end() ? 0 : it->second;
      min_count = std::min(min_count, c);
      max_count = std::max(max_count, c);
    }
    EXPECT_LE(max_count - min_count, 2u)
        << "feed " << feed << " lapped the rotation";
  }
}

TEST(ServiceTest, RotationSurvivesQuarantineCompaction) {
  // Quarantining feeds mid-run dirties the rotation order; the lazy
  // compaction must keep granting to every surviving feed (a stale index
  // or dropped anchor would starve or crash).
  const std::vector<Trajectory> trajs = SyntheticTrajectories(12);
  ServiceConfig config = SmallServiceConfig(4);
  config.pool_threads = 1;
  config.max_in_flight = 1;
  ServiceCapture capture;
  ServiceDispatcher service(config, capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  for (int round = 0; round < 12; ++round) {
    for (int f = 0; f < 6; ++f) {
      ASSERT_TRUE(service.Offer("q" + std::to_string(f),
                                trajs[static_cast<size_t>(round)]));
    }
    if (round == 5) {
      // Knock out half the rotation while backlogs are non-empty.
      ASSERT_TRUE(service.OfferQuarantine("q1", "fault"));
      ASSERT_TRUE(service.OfferQuarantine("q3", "fault"));
      ASSERT_TRUE(service.OfferQuarantine("q5", "fault"));
    }
  }
  ASSERT_TRUE(service.Finish().ok());
  const ServiceReport& report = service.report();
  EXPECT_EQ(report.feeds_quarantined, 3u);
  for (const FeedReport& feed : report.feeds_report) {
    const bool odd = (feed.feed.back() - '0') % 2 == 1;
    EXPECT_EQ(feed.quarantined, odd) << feed.feed;
    if (!odd) {
      // Survivors publish their full stream: 12 arrivals = 3 windows.
      EXPECT_EQ(feed.stream.windows_published, 3u) << feed.feed;
      EXPECT_EQ(feed.stream.trajectories_published, 12u) << feed.feed;
    }
  }
}

TEST(ServiceTest, QuarantineOfUnknownFeedStillCountsInReport) {
  // The ingress tier can quarantine a feed the dispatcher never routed
  // (its very first frame was the corrupt one). The report must still
  // name it so the operator sees why the stream is missing.
  ServiceCapture capture;
  ServiceDispatcher service(SmallServiceConfig(10), capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  ASSERT_TRUE(service.OfferQuarantine("ghost", "first frame corrupt"));
  ASSERT_TRUE(service.Finish().ok());
  const ServiceReport& report = service.report();
  EXPECT_EQ(report.feeds_quarantined, 1u);
  ASSERT_EQ(report.feeds_report.size(), 1u);
  EXPECT_EQ(report.feeds_report[0].feed, "ghost");
  EXPECT_TRUE(report.feeds_report[0].quarantined);
}

TEST(ServiceTest, SinkErrorAbortsService) {
  const std::vector<Trajectory> trajs = SyntheticTrajectories(30);
  ServiceConfig config = SmallServiceConfig(5);
  ServiceDispatcher service(
      config, [](const std::string&, const Dataset&,
                 const WindowReport&) -> Status {
        return Status::IOError("sink full");
      });
  ASSERT_TRUE(service.Start(kSeed).ok());
  bool offer_failed = false;
  for (int round = 0; round < 200 && !offer_failed; ++round) {
    for (const Trajectory& t : trajs) {
      if (!service.Offer("x" + std::to_string(round), t)) {
        offer_failed = true;  // ingress observed the abort
        break;
      }
    }
  }
  const Status st = service.Finish();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

TEST(ServiceTest, FinishWithoutArrivalsIsCleanAndEmpty) {
  ServiceCapture capture;
  ServiceDispatcher service(SmallServiceConfig(10), capture.MakeSink());
  ASSERT_TRUE(service.Start(kSeed).ok());
  ASSERT_TRUE(service.Finish().ok());
  EXPECT_EQ(service.report().feeds, 0u);
  EXPECT_EQ(service.report().windows_published, 0u);
}

// ---- StreamRunner time-based closure (the single-feed --close-after-ms
// path shares CloseTimerDelay and the WindowAssembler with the service).

TEST(StreamDeadlineTest, DeadlineClosesPartialWindowOnTrickleFeed) {
  frt::testing::BlockingFeed feed;
  TrajectoryReader reader(feed.stream());
  StreamRunnerConfig config;
  config.window_size = 100;
  config.close_after_ms = 60;
  config.batch.pipeline.m = 3;
  StreamRunner runner(config);
  frt::testing::SinkCapture capture;
  std::atomic<size_t> published{0};
  WindowSink sink = [&](const Dataset& d, const WindowReport& w) -> Status {
    Status st = capture.MakeSink()(d, w);
    published.fetch_add(1);
    return st;
  };
  Rng rng(kSeed);
  std::thread run_thread([&] {
    EXPECT_TRUE(runner.Run(reader, sink, rng).ok());
  });
  // Two complete trajectories (the second id's first line completes the
  // first), then silence: only the deadline can publish them.
  feed.Append(SyntheticCsv(3));
  const auto start = std::chrono::steady_clock::now();
  while (published.load() == 0 &&
         std::chrono::steady_clock::now() - start < milliseconds(5000)) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_GE(published.load(), 1u) << "deadline closure never fired";
  feed.End();
  run_thread.join();

  const StreamReport& report = runner.report();
  EXPECT_EQ(report.trajectories_in, 3u);
  EXPECT_EQ(report.trajectories_published, 3u);
  EXPECT_GE(report.windows_deadline_closed, 1u);
  ASSERT_GE(report.windows.size(), 2u);
  EXPECT_EQ(report.windows.front().close_reason, WindowClose::kDeadline);
  EXPECT_EQ(report.windows.back().close_reason, WindowClose::kFinal);
}

TEST(StreamDeadlineTest, CountClosureStillWinsWhenFeedIsFast) {
  // A fast finite feed with a generous deadline behaves exactly like the
  // untimed runner: every window closes by count (plus the final tail).
  const std::string csv = SyntheticCsv(250);
  std::istringstream in(csv);
  TrajectoryReader reader(in);
  StreamRunnerConfig config;
  config.window_size = 100;
  config.close_after_ms = 60000;
  config.batch.pipeline.m = 3;
  StreamRunner runner(config);
  frt::testing::SinkCapture capture;
  Rng rng(kSeed);
  auto sink = capture.MakeSink();
  ASSERT_TRUE(runner.Run(reader, sink, rng).ok());
  const StreamReport& report = runner.report();
  EXPECT_EQ(report.windows_published, 3u);
  EXPECT_EQ(report.windows_deadline_closed, 0u);
  EXPECT_EQ(report.windows[0].close_reason, WindowClose::kCount);
  EXPECT_EQ(report.windows[2].close_reason, WindowClose::kFinal);
  EXPECT_EQ(capture.ids.size(), 250u);
}

}  // namespace
}  // namespace frt
