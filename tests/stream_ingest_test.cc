// Unit tests for stream/ingest.h: incremental assembly across chunk
// boundaries, comment/blank handling, trailing-newline variants, malformed
// input diagnostics, and equivalence with the one-shot LoadDatasetCsv path.

#include "stream/ingest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "traj/io.h"

namespace frt {
namespace {

constexpr char kThreeTrajectories[] =
    "# traj_id,x,y,t\n"
    "1,100.000,200.000,10\n"
    "1,110.000,210.000,20\n"
    "\n"
    "2,300.000,400.000,30\n"
    "# interleaved comment\n"
    "2,310.000,410.000,40\n"
    "2,320.000,420.000,50\n"
    "7,500.000,600.000,60\n";

std::vector<Trajectory> DrainAll(std::istream& in, size_t chunk_bytes) {
  TrajectoryReaderOptions options;
  options.chunk_bytes = chunk_bytes;
  TrajectoryReader reader(in, options);
  std::vector<Trajectory> out;
  for (;;) {
    auto next = reader.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next->has_value()) break;
    out.push_back(std::move(**next));
  }
  return out;
}

void ExpectThreeTrajectories(const std::vector<Trajectory>& trajs) {
  ASSERT_EQ(trajs.size(), 3u);
  EXPECT_EQ(trajs[0].id(), 1);
  ASSERT_EQ(trajs[0].size(), 2u);
  EXPECT_EQ(trajs[0][0].p, (Point{100.0, 200.0}));
  EXPECT_EQ(trajs[0][0].t, 10);
  EXPECT_EQ(trajs[0][1].t, 20);
  EXPECT_EQ(trajs[1].id(), 2);
  ASSERT_EQ(trajs[1].size(), 3u);
  EXPECT_EQ(trajs[1][2].p, (Point{320.0, 420.0}));
  EXPECT_EQ(trajs[2].id(), 7);
  ASSERT_EQ(trajs[2].size(), 1u);
  EXPECT_EQ(trajs[2][0].t, 60);
}

TEST(TrajectoryReaderTest, AssemblesConsecutiveLinesIntoTrajectories) {
  std::istringstream in(kThreeTrajectories);
  ExpectThreeTrajectories(DrainAll(in, 1 << 16));
}

TEST(TrajectoryReaderTest, ChunkBoundariesMidLineDoNotSplitRecords) {
  // chunk_bytes = 1 puts a refill boundary inside every line; a sweep of
  // small sizes also lands boundaries on '\n', ',' and digit positions.
  for (const size_t chunk : {1u, 2u, 3u, 5u, 7u, 16u, 64u}) {
    std::istringstream in(kThreeTrajectories);
    ExpectThreeTrajectories(DrainAll(in, chunk));
  }
}

TEST(TrajectoryReaderTest, MissingTrailingNewline) {
  std::string input(kThreeTrajectories);
  input.pop_back();  // drop final '\n'; the last line is unterminated
  for (const size_t chunk : {1u, 4u, 1u << 16}) {
    std::istringstream in(input);
    ExpectThreeTrajectories(DrainAll(in, chunk));
  }
}

TEST(TrajectoryReaderTest, CommentOnlyInputYieldsNothing) {
  std::istringstream in("# header\n# another\n\n   \n");
  EXPECT_TRUE(DrainAll(in, 3).empty());
}

TEST(TrajectoryReaderTest, EmptyInputYieldsNothing) {
  std::istringstream in("");
  TrajectoryReader reader(in);
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  // Terminal state is sticky.
  auto again = reader.Next();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->has_value());
}

TEST(TrajectoryReaderTest, CrLfLinesAreAccepted) {
  std::istringstream in("3,1.0,2.0,5\r\n3,2.0,3.0,6\r\n");
  const auto trajs = DrainAll(in, 4);
  ASSERT_EQ(trajs.size(), 1u);
  EXPECT_EQ(trajs[0].id(), 3);
  EXPECT_EQ(trajs[0].size(), 2u);
}

TEST(TrajectoryReaderTest, MalformedLineReportsLineNumber) {
  std::istringstream in("1,10.0,20.0,1\n1,oops,20.0,2\n");
  TrajectoryReader reader(in);
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsInvalidArgument() || next.status().IsIOError())
      << next.status().ToString();
  // Errors are sticky: the reader does not resynchronize mid-stream.
  auto again = reader.Next();
  EXPECT_FALSE(again.ok());
}

TEST(TrajectoryReaderTest, WrongFieldCountNamesTheLine) {
  std::istringstream in("1,10.0,20.0,1\n1,10.0\n");
  TrajectoryReader reader(in);
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("line 2"), std::string::npos)
      << next.status().ToString();
}

TEST(TrajectoryReaderTest, CountersTrackProgress) {
  std::istringstream in(kThreeTrajectories);
  TrajectoryReaderOptions options;
  options.chunk_bytes = 8;
  TrajectoryReader reader(in, options);
  size_t trajs = 0;
  while (true) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    ++trajs;
  }
  EXPECT_EQ(trajs, 3u);
  EXPECT_EQ(reader.trajectories_read(), 3u);
  EXPECT_EQ(reader.records_read(), 6u);
  EXPECT_EQ(reader.lines_read(), 9u);  // 6 samples + 2 comments + 1 blank
}

TEST(TrajectoryReaderTest, StreamEquivalentToLoadDatasetCsv) {
  const std::string path = "stream_ingest_roundtrip.csv";
  {
    Dataset dataset;
    Trajectory a(10);
    a.Append(Point{1.0, 2.0}, 100);
    a.Append(Point{3.0, 4.0}, 200);
    Trajectory b(11);
    b.Append(Point{5.0, 6.0}, 300);
    ASSERT_TRUE(dataset.Add(std::move(a)).ok());
    ASSERT_TRUE(dataset.Add(std::move(b)).ok());
    ASSERT_TRUE(SaveDatasetCsv(dataset, path).ok());
  }
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  TrajectoryReaderOptions options;
  options.chunk_bytes = 3;
  auto streamed = ReadDatasetFromStream(file, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_EQ(streamed->size(), loaded->size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*streamed)[i].id(), (*loaded)[i].id());
    EXPECT_EQ((*streamed)[i].points(), (*loaded)[i].points());
  }
  std::remove(path.c_str());
}

TEST(TrajectoryReaderTest, NonContiguousIdYieldsSeparateTrajectories) {
  // Interleaving closes the first group; the duplicate id resurfaces as a
  // distinct trajectory (the one-shot Dataset loader rejects it downstream).
  std::istringstream in("1,1.0,1.0,1\n2,2.0,2.0,2\n1,3.0,3.0,3\n");
  const auto trajs = DrainAll(in, 1 << 16);
  ASSERT_EQ(trajs.size(), 3u);
  EXPECT_EQ(trajs[0].id(), 1);
  EXPECT_EQ(trajs[1].id(), 2);
  EXPECT_EQ(trajs[2].id(), 1);
}

}  // namespace
}  // namespace frt
