// obs::AdminServer: the HTTP/1.0 introspection endpoint end to end over
// real sockets — routing, error paths, the validate-then-apply /control
// contract, form/JSON helpers, transient-accept classification, and a
// dispatcher-backed scrape whose registry values match the final report.

#include "obs/admin_server.h"

#include <sys/socket.h>

#include <cerrno>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/socket.h"
#include "service/dispatcher.h"
#include "stream/ingest.h"
#include "testing_util.h"

namespace frt::obs {
namespace {

using frt::testing::SyntheticCsv;

net::Endpoint LoopbackEndpoint(uint16_t port = 0) {
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = port;
  return endpoint;
}

/// One-shot HTTP/1.0 exchange: writes `request` verbatim, reads to EOF.
std::string RawExchange(uint16_t port, const std::string& request) {
  auto conn = net::ConnectTo(LoopbackEndpoint(port));
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  if (!conn.ok()) return {};
  EXPECT_TRUE(net::WriteAll(conn->fd(), request.data(), request.size()).ok());
  ::shutdown(conn->fd(), SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

std::string Get(uint16_t port, const std::string& target) {
  return RawExchange(port,
                     "GET " + target + " HTTP/1.0\r\n\r\n");
}

std::string Post(uint16_t port, const std::string& target,
                 const std::string& body) {
  std::ostringstream request;
  request << "POST " << target << " HTTP/1.0\r\n"
          << "Content-Length: " << body.size() << "\r\n\r\n"
          << body;
  return RawExchange(port, request.str());
}

std::string BodyOf(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

TEST(AdminServerTest, ServesMetricsFromItsRegistry) {
  Registry registry;
  registry.GetCounter("frt_test_scraped_total", "demo")->Inc(9);
  AdminServer::Options options;
  options.endpoint = LoopbackEndpoint();
  options.registry = &registry;
  AdminServer admin(options);
  ASSERT_TRUE(admin.Start().ok());
  ASSERT_NE(admin.bound_port(), 0);

  const std::string response = Get(admin.bound_port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("frt_test_scraped_total 9\n"), std::string::npos);
  // The admin plane counts its own scrapes into the same registry.
  const std::string second = Get(admin.bound_port(), "/metrics");
  EXPECT_NE(second.find("frt_admin_requests_total 2\n"), std::string::npos);
}

TEST(AdminServerTest, DefaultHealthzAndErrorPaths) {
  Registry registry;
  AdminServer::Options options;
  options.endpoint = LoopbackEndpoint();
  options.registry = &registry;
  AdminServer admin(options);
  ASSERT_TRUE(admin.Start().ok());
  const uint16_t port = admin.bound_port();

  EXPECT_NE(Get(port, "/healthz").find("ok\n"), std::string::npos);
  EXPECT_NE(Get(port, "/nope").find("HTTP/1.0 404"), std::string::npos);
  // Known path, wrong method.
  EXPECT_NE(Post(port, "/metrics", "x=y").find("HTTP/1.0 405"),
            std::string::npos);
  // Garbage request line.
  EXPECT_NE(RawExchange(port, "NOT-HTTP\r\n\r\n").find("HTTP/1.0 400"),
            std::string::npos);
}

TEST(AdminServerTest, HandlerSeesQueryAndBody) {
  Registry registry;
  AdminServer::Options options;
  options.endpoint = LoopbackEndpoint();
  options.registry = &registry;
  AdminServer admin(options);
  admin.Handle("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body =
        request.method + "|" + request.path + "|" + request.query + "|" +
        request.body;
    return response;
  });
  ASSERT_TRUE(admin.Start().ok());
  const std::string response =
      Post(admin.bound_port(), "/echo?a=1&b=2", "hello body");
  EXPECT_NE(response.find("POST|/echo|a=1&b=2|hello body"),
            std::string::npos);
}

TEST(AdminServerTest, ControlValidatesBeforeApplyingAnyToggle) {
  Registry registry;
  AdminServer::Options options;
  options.endpoint = LoopbackEndpoint();
  options.registry = &registry;
  AdminServer admin(options);
  std::vector<int64_t> applied;
  ControlHooks hooks;
  hooks.set_metrics_interval_ms = [&applied](int64_t ms) {
    applied.push_back(ms);
    return true;
  };
  admin.Handle("POST", "/control", MakeControlHandler(std::move(hooks)));
  ASSERT_TRUE(admin.Start().ok());
  const uint16_t port = admin.bound_port();

  // A bad toggle anywhere in the batch rejects the whole batch.
  EXPECT_NE(Post(port, "/control", "metrics_interval_ms=250&bogus=1")
                .find("HTTP/1.0 400"),
            std::string::npos);
  EXPECT_NE(
      Post(port, "/control", "metrics_interval_ms=0").find("HTTP/1.0 400"),
      std::string::npos);
  EXPECT_TRUE(applied.empty());

  const std::string ok = Post(port, "/control", "metrics_interval_ms=250");
  EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(ok.find("metrics_interval_ms: 250\n"), std::string::npos);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], 250);

  EXPECT_NE(Post(port, "/control", "").find("HTTP/1.0 400"),
            std::string::npos);
}

TEST(AdminServerTest, ControlRejectsIntervalWithoutHook) {
  Registry registry;
  AdminServer::Options options;
  options.endpoint = LoopbackEndpoint();
  options.registry = &registry;
  AdminServer admin(options);
  admin.Handle("POST", "/control", MakeControlHandler(ControlHooks{}));
  ASSERT_TRUE(admin.Start().ok());
  const std::string response =
      Post(admin.bound_port(), "/control", "metrics_interval_ms=100");
  EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos);
  EXPECT_NE(response.find("not supported here"), std::string::npos);
}

TEST(AdminServerTest, StopIsIdempotentAndRestartable) {
  Registry registry;
  AdminServer::Options options;
  options.endpoint = LoopbackEndpoint();
  options.registry = &registry;
  AdminServer admin(options);
  ASSERT_TRUE(admin.Start().ok());
  EXPECT_FALSE(admin.Start().ok());  // double start is a precondition error
  admin.Stop();
  admin.Stop();
  ASSERT_TRUE(admin.Start().ok());
  EXPECT_NE(Get(admin.bound_port(), "/healthz").find("ok\n"),
            std::string::npos);
}

TEST(ParseFormPairsTest, DecodesEscapesAndPreservesOrder) {
  const auto pairs = ParseFormPairs("a=1&b=two+words&c=%2Fpath%3D&flag");
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].first, "a");
  EXPECT_EQ(pairs[0].second, "1");
  EXPECT_EQ(pairs[1].second, "two words");
  EXPECT_EQ(pairs[2].second, "/path=");
  EXPECT_EQ(pairs[3].first, "flag");
  EXPECT_EQ(pairs[3].second, "");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a") + '\x01' + "b"), "a\\u0001b");
}

TEST(TransientAcceptErrorTest, ClassifiesRetryableErrnos) {
  EXPECT_TRUE(net::IsTransientAcceptError(ECONNABORTED));
  EXPECT_TRUE(net::IsTransientAcceptError(EMFILE));
  EXPECT_TRUE(net::IsTransientAcceptError(ENFILE));
  EXPECT_TRUE(net::IsTransientAcceptError(ENOBUFS));
  EXPECT_FALSE(net::IsTransientAcceptError(EBADF));
  EXPECT_FALSE(net::IsTransientAcceptError(EINVAL));
}

// ---- End to end: a dispatcher publishing into a private registry, the
// admin plane scraping it live, and shutdown values matching the final
// report exactly (writers quiesced ⇒ reads exact). ----

TEST(AdminServerTest, DispatcherRegistryMatchesFinalReportAtShutdown) {
  auto registry = std::make_unique<Registry>();
  ServiceConfig config;
  config.stream.window_size = 10;
  config.stream.batch.shards = 2;
  config.stream.batch.pipeline.m = 3;
  config.stream.batch.pipeline.epsilon_global = 0.5;
  config.stream.batch.pipeline.epsilon_local = 0.5;
  config.pool_threads = 2;
  config.registry = registry.get();

  AdminServer::Options options;
  options.endpoint = LoopbackEndpoint();
  options.registry = registry.get();
  AdminServer admin(options);
  ASSERT_TRUE(admin.Start().ok());

  size_t windows_seen = 0;
  ServiceDispatcher service(
      config, [&windows_seen](const std::string&, const Dataset&,
                              const WindowReport&) {
        ++windows_seen;
        return Status::OK();
      });
  ASSERT_TRUE(service.Start(20260807).ok());

  std::istringstream in(SyntheticCsv(40));
  TrajectoryReader reader(in);
  for (;;) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    Trajectory t = std::move(**next);
    ASSERT_TRUE(service.Offer("alpha", t));
    ASSERT_TRUE(service.Offer("beta", std::move(t)));
  }
  // A mid-run scrape must parse and show live (possibly partial) counts.
  const std::string mid = Get(admin.bound_port(), "/metrics");
  EXPECT_NE(mid.find("# TYPE frt_serve_windows_published_total counter"),
            std::string::npos);

  ASSERT_TRUE(service.Finish().ok());
  const ServiceReport& report = service.report();
  ASSERT_GT(report.windows_published, 0u);
  EXPECT_EQ(windows_seen, report.windows_published);

  // Quiesced: every registry mirror agrees with the final report.
  EXPECT_EQ(registry->GetCounter("frt_serve_windows_published_total")->value(),
            report.windows_published);
  EXPECT_EQ(registry->GetCounter("frt_serve_sessions_created_total")->value(),
            report.sessions_created);
  EXPECT_EQ(registry->GetCounter("frt_serve_trajectories_in_total")->value(),
            report.trajectories_in);
  EXPECT_EQ(
      registry->GetCounter("frt_serve_trajectories_published_total")->value(),
      report.trajectories_published);
  EXPECT_EQ(registry->GetCounter("frt_serve_windows_refused_total")->value(),
            report.windows_refused);

  // And the shutdown scrape carries those exact values.
  const std::string final_scrape = Get(admin.bound_port(), "/metrics");
  std::ostringstream expected;
  expected << "frt_serve_windows_published_total "
           << report.windows_published << "\n";
  EXPECT_NE(final_scrape.find(expected.str()), std::string::npos);

  // The introspection board saw the final tick.
  auto intro = service.Introspect();
  ASSERT_NE(intro, nullptr);
  EXPECT_TRUE(intro->finished);
  ASSERT_EQ(intro->feeds_detail.size(), 2u);
  for (const auto& feed : intro->feeds_detail) {
    EXPECT_GT(feed.windows_published, 0u);
  }
  EXPECT_EQ(BodyOf(Get(admin.bound_port(), "/healthz")), "ok\n");
}

}  // namespace
}  // namespace frt::obs
