// End-to-end integration tests: generate a workload, run the paper's GL
// pipeline and representative baselines, and verify the qualitative shape
// of Table II at small scale — privacy improves, utility stays bounded,
// recovery of frequency-randomized output degrades versus signature
// removal.

#include <gtest/gtest.h>

#include "attack/linker.h"
#include "attack/recovery_attack.h"
#include "baselines/signature_closure.h"
#include "core/pipeline.h"
#include "metrics/utility.h"
#include "synth/workload.h"
#include "traj/io.h"

namespace frt {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig wcfg;
    wcfg.num_taxis = 30;
    wcfg.target_points = 160;
    RoadGenConfig rcfg;
    rcfg.cols = 12;
    rcfg.rows = 12;
    auto w = GenerateTaxiWorkload(wcfg, rcfg, 1234);
    ASSERT_TRUE(w.ok());
    workload_ = new Workload(std::move(*w));

    FrequencyRandomizerConfig cfg;
    cfg.m = 10;
    cfg.epsilon_global = 0.5;
    cfg.epsilon_local = 0.5;
    FrequencyRandomizer gl(cfg);
    Rng rng(42);
    auto out = gl.Anonymize(workload_->dataset, rng);
    ASSERT_TRUE(out.ok());
    gl_output_ = new Dataset(std::move(*out));

    SignatureClosureConfig sc_cfg;
    sc_cfg.m = 10;
    SignatureClosure sc(sc_cfg);
    Rng rng2(42);
    auto sc_out = sc.Anonymize(workload_->dataset, rng2);
    ASSERT_TRUE(sc_out.ok());
    sc_output_ = new Dataset(std::move(*sc_out));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete gl_output_;
    delete sc_output_;
  }

  static Workload* workload_;
  static Dataset* gl_output_;
  static Dataset* sc_output_;
};

Workload* IntegrationTest::workload_ = nullptr;
Dataset* IntegrationTest::gl_output_ = nullptr;
Dataset* IntegrationTest::sc_output_ = nullptr;

TEST_F(IntegrationTest, GlKeepsAllTrajectories) {
  ASSERT_EQ(gl_output_->size(), workload_->dataset.size());
  for (size_t i = 0; i < gl_output_->size(); ++i) {
    EXPECT_EQ((*gl_output_)[i].id(), workload_->dataset[i].id());
    EXPECT_GT((*gl_output_)[i].size(), 0u);
  }
}

TEST_F(IntegrationTest, GlReducesSpatialLinkage) {
  // At this tiny scale (30 users) the linking attack is much easier than in
  // the paper's |D| = 1000 setting, so the test asserts direction, not the
  // full Table II magnitude (bench_table2 reproduces that at scale).
  Linker linker(workload_->dataset.Bounds());
  linker.Train(workload_->dataset);
  const double raw =
      linker.LinkingAccuracy(workload_->dataset, SignatureType::kSpatial);
  const double gl =
      linker.LinkingAccuracy(*gl_output_, SignatureType::kSpatial);
  EXPECT_GE(raw, 0.9);
  EXPECT_LT(gl, raw - 0.03);
}

TEST_F(IntegrationTest, GlReducesSequentialAndJointLinkage) {
  Linker linker(workload_->dataset.Bounds());
  linker.Train(workload_->dataset);
  const double raw_sq =
      linker.LinkingAccuracy(workload_->dataset,
                             SignatureType::kSequential);
  const double gl_sq =
      linker.LinkingAccuracy(*gl_output_, SignatureType::kSequential);
  EXPECT_LE(gl_sq, raw_sq);
}

TEST_F(IntegrationTest, GlPreservesBoundedUtility) {
  UtilityEvaluator evaluator(workload_->dataset.Bounds());
  const UtilityScores s =
      evaluator.EvaluateAll(workload_->dataset, *gl_output_);
  // Only signature points are touched: the divergence metrics stay small
  // and most frequent patterns survive (Table II: DE ~ 0.01, FFP ~ 0.96).
  EXPECT_LT(s.de, 0.2);
  EXPECT_LT(s.te, 0.5);
  EXPECT_GT(s.ffp, 0.6);
  EXPECT_LT(s.inf, 0.95);
  EXPECT_GT(s.inf, 0.0);
}

TEST_F(IntegrationTest, EditsCollapseStrictPointRecovery) {
  const RecoveryScores raw_rec =
      EvaluateRecovery(*workload_, workload_->dataset);
  const RecoveryScores gl_rec = EvaluateRecovery(*workload_, *gl_output_);
  // Table II shape: raw data is point-recoverable; the frequency
  // randomization desynchronizes strict point matching almost entirely.
  EXPECT_GE(raw_rec.accuracy, 0.6);
  EXPECT_LT(gl_rec.accuracy, raw_rec.accuracy * 0.4);
  // Route recall stays high for record-level methods (the routes are still
  // traced by the surviving points) while precision/RMF degrade.
  EXPECT_GE(gl_rec.rmf, raw_rec.rmf - 0.05);
}

TEST_F(IntegrationTest, ScStillRecoversMajorityOfRoutes) {
  const RecoveryScores sc_rec = EvaluateRecovery(*workload_, *sc_output_);
  // The paper's motivating observation: removing signatures alone leaves
  // the majority of the route recoverable via map-matching.
  EXPECT_GE(sc_rec.recall, 0.5);
}

TEST_F(IntegrationTest, CsvRoundTripOfAnonymizedOutput) {
  const std::string path = "/tmp/frt_integration_gl.csv";
  ASSERT_TRUE(SaveDatasetCsv(*gl_output_, path).ok());
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), gl_output_->size());
  EXPECT_EQ(loaded->TotalPoints(), gl_output_->TotalPoints());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frt
