// Tests for src/metrics: distribution utilities and the Table II utility
// metrics (INF, DE, TE, FFP, MI).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "metrics/distribution.h"
#include "metrics/utility.h"

namespace frt {
namespace {

// ---------------- distribution utilities ----------------

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);
  h.Add(9.9);
  h.Add(-3.0);   // clamps into bin 0
  h.Add(100.0);  // clamps into last bin
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.counts()[4], 2.0);
  const auto p = h.Probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[4], 0.5);
}

TEST(DistributionTest, NormalizeHandlesZeroMass) {
  const auto p = NormalizeToProbabilities({0.0, 0.0});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(DistributionTest, EntropyKnownValues) {
  EXPECT_DOUBLE_EQ(ShannonEntropy({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy({0.5, 0.5}), 1.0);
  EXPECT_NEAR(ShannonEntropy({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
}

TEST(DistributionTest, KlProperties) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{0.9, 0.1};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p), 0.0);
  EXPECT_GT(KlDivergence(p, q), 0.0);
}

TEST(DistributionTest, JsdProperties) {
  const std::vector<double> p{0.5, 0.5, 0.0};
  const std::vector<double> q{0.0, 0.5, 0.5};
  const std::vector<double> disjoint_a{1.0, 0.0};
  const std::vector<double> disjoint_b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(JensenShannonDivergence(p, p), 0.0);
  EXPECT_NEAR(JensenShannonDivergence(p, q),
              JensenShannonDivergence(q, p), 1e-12);
  // Base-2 JSD is bounded by 1, attained for disjoint supports.
  EXPECT_NEAR(JensenShannonDivergence(disjoint_a, disjoint_b), 1.0, 1e-9);
  EXPECT_LE(JensenShannonDivergence(p, q), 1.0);
  EXPECT_GT(JensenShannonDivergence(p, q), 0.0);
}

TEST(DistributionTest, SparseJsdMatchesDense) {
  std::unordered_map<uint64_t, double> a{{1, 2.0}, {2, 2.0}};
  std::unordered_map<uint64_t, double> b{{2, 2.0}, {3, 2.0}};
  // Dense equivalent over support {1,2,3}: [0.5,0.5,0] vs [0,0.5,0.5].
  const double dense = JensenShannonDivergence({0.5, 0.5, 0.0},
                                               {0.0, 0.5, 0.5});
  EXPECT_NEAR(SparseJensenShannon(a, b), dense, 1e-12);
  EXPECT_DOUBLE_EQ(SparseJensenShannon(a, a), 0.0);
}

TEST(DistributionTest, NmiPerfectDependence) {
  // Y == X over 4 categories.
  std::unordered_map<uint64_t, double> joint;
  for (uint32_t x = 0; x < 4; ++x) joint[PackPair(x, x)] = 10.0;
  EXPECT_NEAR(NormalizedMutualInformation(joint, &PairX, &PairY), 1.0,
              1e-9);
}

TEST(DistributionTest, NmiIndependence) {
  std::unordered_map<uint64_t, double> joint;
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) joint[PackPair(x, y)] = 5.0;
  }
  EXPECT_NEAR(NormalizedMutualInformation(joint, &PairX, &PairY), 0.0,
              1e-9);
}

TEST(DistributionTest, NmiDegenerateMarginals) {
  std::unordered_map<uint64_t, double> joint{{PackPair(1, 1), 10.0}};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(joint, &PairX, &PairY), 0.0);
}

// ---------------- utility metrics ----------------

Dataset GridWalkDataset(int n_traj, int len, double step, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < n_traj; ++i) {
    Trajectory t(i);
    Point p{rng.Uniform(1000, 9000), rng.Uniform(1000, 9000)};
    for (int j = 0; j < len; ++j) {
      t.Append(p, j * 60);
      p.x += rng.Uniform(-step, step);
      p.y += rng.Uniform(-step, step);
    }
    (void)d.Add(std::move(t));
  }
  return d;
}

class UtilityTest : public ::testing::Test {
 protected:
  UtilityTest()
      : original_(GridWalkDataset(12, 60, 400, 1)),
        evaluator_(BBox::Of({0, 0}, {10000, 10000})) {}

  Dataset original_;
  UtilityEvaluator evaluator_;
};

TEST_F(UtilityTest, IdenticalDatasetsScorePerfect) {
  const UtilityScores s = evaluator_.EvaluateAll(original_, original_);
  EXPECT_DOUBLE_EQ(s.inf, 0.0);
  EXPECT_DOUBLE_EQ(s.de, 0.0);
  EXPECT_DOUBLE_EQ(s.te, 0.0);
  EXPECT_DOUBLE_EQ(s.ffp, 1.0);
  EXPECT_GT(s.mi, 0.8);  // aligned identical streams: near-total dependence
}

TEST_F(UtilityTest, DisjointDatasetsScoreWorst) {
  // Shift everything far away: nothing is preserved.
  Dataset shifted;
  for (size_t i = 0; i < original_.size(); ++i) {
    Trajectory t(original_[i].id());
    for (const auto& tp : original_[i].points()) {
      t.Append(Point{tp.p.x, tp.p.y + 5000.0}, tp.t);
    }
    ASSERT_TRUE(shifted.Add(std::move(t)).ok());
  }
  // Almost everything is lost (points shifted beyond the region boundary
  // clamp into edge cells, so a tiny residue can coincide).
  EXPECT_GE(evaluator_.InformationLoss(original_, shifted), 0.9);
  EXPECT_GT(evaluator_.TripDivergence(original_, shifted), 0.5);
}

TEST_F(UtilityTest, InfCountsPartialPreservation) {
  // Truncate every trajectory to its first half: INF ~ 0.5.
  Dataset halved;
  for (size_t i = 0; i < original_.size(); ++i) {
    Trajectory t(original_[i].id());
    for (size_t p = 0; p < original_[i].size() / 2; ++p) {
      t.Append(original_[i][p]);
    }
    ASSERT_TRUE(halved.Add(std::move(t)).ok());
  }
  const double inf = evaluator_.InformationLoss(original_, halved);
  EXPECT_NEAR(inf, 0.5, 0.05);
}

TEST_F(UtilityTest, DiameterDivergenceDetectsShrinkage) {
  // Collapse trajectories to their first point: diameters all zero.
  Dataset collapsed;
  for (size_t i = 0; i < original_.size(); ++i) {
    Trajectory t(original_[i].id());
    for (size_t p = 0; p < original_[i].size(); ++p) {
      t.Append(original_[i][0]);
    }
    ASSERT_TRUE(collapsed.Add(std::move(t)).ok());
  }
  EXPECT_GT(evaluator_.DiameterDivergence(original_, collapsed), 0.5);
  EXPECT_LT(evaluator_.DiameterDivergence(original_, original_), 1e-12);
}

TEST_F(UtilityTest, FfpDropsWhenPatternsDestroyed) {
  Rng rng(7);
  // Random independent data has different frequent patterns.
  const Dataset other = GridWalkDataset(12, 60, 400, 99);
  const double same = evaluator_.FrequentPatternF(original_, original_);
  const double diff = evaluator_.FrequentPatternF(original_, other);
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_LT(diff, same);
  (void)rng;
}

TEST_F(UtilityTest, MiDropsUnderPerturbation) {
  Rng rng(3);
  Dataset noisy;
  for (size_t i = 0; i < original_.size(); ++i) {
    Trajectory t(original_[i].id());
    for (const auto& tp : original_[i].points()) {
      t.Append(Point{tp.p.x + rng.Uniform(-3000, 3000),
                     tp.p.y + rng.Uniform(-3000, 3000)},
               tp.t);
    }
    ASSERT_TRUE(noisy.Add(std::move(t)).ok());
  }
  const double mi_same = evaluator_.MutualInformation(original_, original_);
  const double mi_noisy = evaluator_.MutualInformation(original_, noisy);
  EXPECT_LT(mi_noisy, mi_same);
}

TEST_F(UtilityTest, PairsByIdWithPositionFallback) {
  // Reverse the order but keep ids: pairing must still match by id.
  Dataset reversed;
  for (size_t i = original_.size(); i > 0; --i) {
    ASSERT_TRUE(reversed.Add(original_[i - 1]).ok());
  }
  EXPECT_DOUBLE_EQ(evaluator_.InformationLoss(original_, reversed), 0.0);
}

}  // namespace
}  // namespace frt
