// Unit tests for src/synth: road generation and the taxi workload (the
// T-Drive substitute). The workload tests assert exactly the structural
// properties the paper's mechanisms rely on: dwell-heavy anchors with high
// PF and low TF, shared hotspots with high TF, road-constrained geometry,
// and consistent ground truth.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/signature.h"
#include "synth/road_gen.h"
#include "synth/workload.h"
#include "traj/quantizer.h"

namespace frt {
namespace {

RoadGenConfig SmallRoad() {
  RoadGenConfig cfg;
  cfg.cols = 12;
  cfg.rows = 12;
  return cfg;
}

WorkloadConfig SmallWorkload() {
  WorkloadConfig cfg;
  cfg.num_taxis = 20;
  cfg.target_points = 150;
  return cfg;
}

TEST(RoadGenTest, GeneratesConnectedNetwork) {
  auto net = GenerateRoadNetwork(SmallRoad(), 1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->NumNodes(), 144u);
  EXPECT_TRUE(net->IsConnected());
  EXPECT_GT(net->NumEdges(), net->NumNodes());  // denser than a tree
}

TEST(RoadGenTest, DeterministicForSeed) {
  auto a = GenerateRoadNetwork(SmallRoad(), 5);
  auto b = GenerateRoadNetwork(SmallRoad(), 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (size_t i = 0; i < a->NumNodes(); ++i) {
    EXPECT_EQ(a->node(i).p, b->node(i).p);
  }
}

TEST(RoadGenTest, DifferentSeedsDiffer) {
  auto a = GenerateRoadNetwork(SmallRoad(), 1);
  auto b = GenerateRoadNetwork(SmallRoad(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = a->NumEdges() != b->NumEdges();
  for (size_t i = 0; !any_diff && i < a->NumNodes(); ++i) {
    any_diff = !(a->node(i).p == b->node(i).p);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RoadGenTest, AllCategoriesPresent) {
  auto net = GenerateRoadNetwork(SmallRoad(), 3);
  ASSERT_TRUE(net.ok());
  std::unordered_set<int> cats;
  for (const auto& n : net->nodes()) {
    cats.insert(static_cast<int>(n.category));
  }
  // Residential / office / shopping must exist for the workload to work.
  EXPECT_TRUE(cats.count(static_cast<int>(PoiCategory::kResidential)));
  EXPECT_TRUE(cats.count(static_cast<int>(PoiCategory::kOffice)));
  EXPECT_TRUE(cats.count(static_cast<int>(PoiCategory::kShopping)));
}

TEST(RoadGenTest, RejectsBadConfig) {
  RoadGenConfig cfg;
  cfg.cols = 1;
  EXPECT_FALSE(GenerateRoadNetwork(cfg, 1).ok());
  cfg = RoadGenConfig{};
  cfg.spacing = -5;
  EXPECT_FALSE(GenerateRoadNetwork(cfg, 1).ok());
}

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto w = GenerateTaxiWorkload(SmallWorkload(), SmallRoad(), 42);
    ASSERT_TRUE(w.ok());
    workload_ = new Workload(std::move(*w));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* WorkloadTest::workload_ = nullptr;

TEST_F(WorkloadTest, SizesMatchConfig) {
  EXPECT_EQ(workload_->dataset.size(), 20u);
  for (const auto& t : workload_->dataset.trajectories()) {
    EXPECT_GE(t.size(), 150u);
    EXPECT_LE(t.size(), 220u);  // overshoot bounded by one trip
  }
  EXPECT_EQ(workload_->truth.route_edges.size(), 20u);
  EXPECT_EQ(workload_->truth.point_edges.size(), 20u);
}

TEST_F(WorkloadTest, GroundTruthAlignsWithPoints) {
  for (size_t i = 0; i < workload_->dataset.size(); ++i) {
    EXPECT_EQ(workload_->truth.point_edges[i].size(),
              workload_->dataset[i].size());
    // Every per-point edge is part of the trajectory's route set.
    std::unordered_set<EdgeId> route(
        workload_->truth.route_edges[i].begin(),
        workload_->truth.route_edges[i].end());
    for (const EdgeId e : workload_->truth.point_edges[i]) {
      if (e >= 0) {
        EXPECT_TRUE(route.count(e) > 0);
      }
    }
  }
}

TEST_F(WorkloadTest, PointsLieNearTheirGroundTruthEdge) {
  for (size_t i = 0; i < workload_->dataset.size(); ++i) {
    const auto& traj = workload_->dataset[i];
    for (size_t p = 0; p < traj.size(); ++p) {
      const EdgeId e = workload_->truth.point_edges[i][p];
      if (e < 0) continue;
      const double d =
          PointSegmentDistance(traj[p].p, workload_->network.EdgeSegment(e));
      ASSERT_LE(d, 60.0) << "traj " << i << " point " << p;
    }
  }
}

TEST_F(WorkloadTest, ConsecutivePointSpacingMatchesTDriveScale) {
  // Driving points should be spaced around point_spacing; dwell points are
  // near-zero. Check that the median driving hop is in a sane band.
  std::vector<double> hops;
  for (const auto& t : workload_->dataset.trajectories()) {
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      const double d = Distance(t[i].p, t[i + 1].p);
      if (d > 100.0) hops.push_back(d);
    }
  }
  ASSERT_FALSE(hops.empty());
  std::sort(hops.begin(), hops.end());
  const double median = hops[hops.size() / 2];
  EXPECT_GE(median, 300.0);
  EXPECT_LE(median, 900.0);
}

TEST_F(WorkloadTest, TimestampsStrictlyIncrease) {
  for (const auto& t : workload_->dataset.trajectories()) {
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      ASSERT_LT(t[i].t, t[i + 1].t);
    }
  }
}

TEST_F(WorkloadTest, HomeHasHighPointFrequency) {
  // The home anchor must be among the most frequent locations (dwells).
  BBox region = workload_->dataset.Bounds();
  Quantizer q(region, 11);
  size_t taxis_with_dominant_home = 0;
  for (size_t i = 0; i < workload_->dataset.size(); ++i) {
    const Point home =
        workload_->network.node(workload_->taxi_home[i]).p;
    const PointFrequency pf =
        ComputePointFrequency(workload_->dataset[i], q);
    auto it = pf.find(q.KeyOf(home));
    if (it == pf.end()) continue;
    // Home must be well above the per-location average.
    const double avg = static_cast<double>(workload_->dataset[i].size()) /
                       static_cast<double>(pf.size());
    if (static_cast<double>(it->second) >= 3.0 * avg) {
      ++taxis_with_dominant_home;
    }
  }
  EXPECT_GE(taxis_with_dominant_home, workload_->dataset.size() * 3 / 4);
}

TEST_F(WorkloadTest, SignatureCapturesAnchors) {
  // The paper's premise: home/work-like anchors dominate the signature.
  BBox region = workload_->dataset.Bounds();
  Quantizer q(region, 11);
  q.RegisterDataset(workload_->dataset);
  SignatureExtractor extractor(&q, 10);
  auto sig = extractor.Extract(workload_->dataset);
  ASSERT_TRUE(sig.ok());
  size_t hits = 0;
  for (size_t i = 0; i < workload_->dataset.size(); ++i) {
    const LocationKey home_key =
        q.KeyOf(workload_->network.node(workload_->taxi_home[i]).p);
    for (const auto& wl : sig->per_traj[i]) {
      if (wl.key == home_key) {
        ++hits;
        break;
      }
    }
  }
  // Home should be in the top-10 signature for the vast majority of taxis.
  EXPECT_GE(hits, workload_->dataset.size() * 3 / 4);
}

TEST_F(WorkloadTest, HotspotsHaveHighTrajectoryFrequency) {
  BBox region = workload_->dataset.Bounds();
  Quantizer q(region, 11);
  const TrajectoryFrequency tf =
      ComputeTrajectoryFrequency(workload_->dataset, q);
  double hotspot_tf = 0.0;
  for (const NodeId h : workload_->hotspots) {
    auto it = tf.find(q.KeyOf(workload_->network.node(h).p));
    if (it != tf.end()) {
      hotspot_tf = std::max(hotspot_tf, static_cast<double>(it->second));
    }
  }
  // At least one hotspot is visited by a quarter of the fleet.
  EXPECT_GE(hotspot_tf, workload_->dataset.size() / 4.0);
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  auto again = GenerateTaxiWorkload(SmallWorkload(), SmallRoad(), 42);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->dataset.size(), workload_->dataset.size());
  for (size_t i = 0; i < again->dataset.size(); ++i) {
    ASSERT_EQ(again->dataset[i].size(), workload_->dataset[i].size());
    for (size_t p = 0; p < again->dataset[i].size(); ++p) {
      ASSERT_EQ(again->dataset[i][p].p, workload_->dataset[i][p].p);
    }
  }
}

TEST(WorkloadConfigTest, RejectsBadConfig) {
  WorkloadConfig cfg;
  cfg.num_taxis = 0;
  EXPECT_FALSE(GenerateTaxiWorkload(cfg, SmallRoad(), 1).ok());
  cfg = WorkloadConfig{};
  cfg.target_points = 2;
  EXPECT_FALSE(GenerateTaxiWorkload(cfg, SmallRoad(), 1).ok());
}

}  // namespace
}  // namespace frt
