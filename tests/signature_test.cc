// Tests for core/signature: PF/TF weighting and top-m extraction on crafted
// datasets with known answers.

#include <gtest/gtest.h>

#include <cmath>

#include "core/signature.h"

namespace frt {
namespace {

// Builds a trajectory visiting each (point, count) in order.
Trajectory Visits(TrajId id,
                  std::initializer_list<std::pair<Point, int>> visits) {
  Trajectory t(id);
  int64_t ts = 0;
  for (const auto& [p, count] : visits) {
    for (int i = 0; i < count; ++i) {
      t.Append(p, ts);
      ts += 60;
    }
  }
  return t;
}

class SignatureTest : public ::testing::Test {
 protected:
  SignatureTest() : quantizer_(BBox::Of({0, 0}, {1000, 1000}), 11) {}
  Quantizer quantizer_;
};

TEST_F(SignatureTest, HighPfLowTfWins) {
  // "home" (500,500) is visited often by user 1 only; the "mall" (100,100)
  // is visited by everyone. Home must dominate user 1's signature.
  Dataset d;
  ASSERT_TRUE(d.Add(Visits(1, {{{500, 500}, 10}, {{100, 100}, 5},
                               {{200, 300}, 1}})).ok());
  ASSERT_TRUE(d.Add(Visits(2, {{{100, 100}, 8}, {{700, 700}, 2}})).ok());
  ASSERT_TRUE(d.Add(Visits(3, {{{100, 100}, 6}, {{800, 200}, 3}})).ok());

  SignatureExtractor extractor(&quantizer_, 2);
  auto sig = extractor.Extract(d);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->per_traj.size(), 3u);
  ASSERT_FALSE(sig->per_traj[0].empty());
  EXPECT_EQ(sig->per_traj[0][0].key, quantizer_.KeyOf({500, 500}));
  // The mall is visited by all |D| trajectories: log(3/3) = 0 weight, so it
  // can never outrank user-specific locations.
  for (const auto& wl : sig->per_traj[0]) {
    EXPECT_NE(wl.key, quantizer_.KeyOf({100, 100}));
  }
}

TEST_F(SignatureTest, WeightFormulaMatchesPaper) {
  Dataset d;
  ASSERT_TRUE(d.Add(Visits(1, {{{500, 500}, 4}, {{300, 300}, 1}})).ok());
  ASSERT_TRUE(d.Add(Visits(2, {{{300, 300}, 2}})).ok());
  SignatureExtractor extractor(&quantizer_, 5);
  auto sig = extractor.Extract(d);
  ASSERT_TRUE(sig.ok());
  // Trajectory 1: |tau| = 5, home PF 4 TF 1 -> (4/5)*ln(2/1).
  const auto& top = sig->per_traj[0][0];
  EXPECT_EQ(top.key, quantizer_.KeyOf({500, 500}));
  EXPECT_EQ(top.pf, 4);
  EXPECT_EQ(top.tf, 1);
  EXPECT_NEAR(top.weight, 0.8 * std::log(2.0), 1e-12);
}

TEST_F(SignatureTest, TopMCapsSignatureSize) {
  Dataset d;
  Trajectory t(1);
  for (int i = 0; i < 30; ++i) {
    t.Append(Point{10.0 + 20 * i, 10.0}, i * 60);
  }
  ASSERT_TRUE(d.Add(std::move(t)).ok());
  ASSERT_TRUE(d.Add(Visits(2, {{{900, 900}, 3}})).ok());
  SignatureExtractor extractor(&quantizer_, 10);
  auto sig = extractor.Extract(d);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->per_traj[0].size(), 10u);
  EXPECT_EQ(sig->per_traj[1].size(), 1u);  // fewer distinct locations than m
}

TEST_F(SignatureTest, CandidateSetIsUnionOfSignatures) {
  Dataset d;
  ASSERT_TRUE(d.Add(Visits(1, {{{500, 500}, 5}, {{100, 900}, 1}})).ok());
  ASSERT_TRUE(d.Add(Visits(2, {{{700, 100}, 5}, {{100, 900}, 1}})).ok());
  SignatureExtractor extractor(&quantizer_, 1);
  auto sig = extractor.Extract(d);
  ASSERT_TRUE(sig.ok());
  ASSERT_EQ(sig->candidate_set.size(), 2u);
  // TF over P matches the dataset TF.
  EXPECT_EQ(sig->tf_over_p.at(quantizer_.KeyOf({500, 500})), 1);
  EXPECT_EQ(sig->tf_over_p.at(quantizer_.KeyOf({700, 100})), 1);
}

TEST_F(SignatureTest, SignatureSortedByWeightDescending) {
  Dataset d;
  ASSERT_TRUE(d.Add(Visits(1, {{{500, 500}, 8}, {{300, 300}, 4},
                               {{600, 100}, 2}, {{50, 50}, 1}})).ok());
  ASSERT_TRUE(d.Add(Visits(2, {{{900, 900}, 1}})).ok());
  SignatureExtractor extractor(&quantizer_, 4);
  auto sig = extractor.Extract(d);
  ASSERT_TRUE(sig.ok());
  const auto& s = sig->per_traj[0];
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    EXPECT_GE(s[i].weight, s[i + 1].weight);
  }
}

TEST_F(SignatureTest, RejectsInvalidInput) {
  Dataset empty;
  SignatureExtractor extractor(&quantizer_, 10);
  EXPECT_FALSE(extractor.Extract(empty).ok());
  Dataset d;
  ASSERT_TRUE(d.Add(Visits(1, {{{1, 1}, 1}})).ok());
  SignatureExtractor bad(&quantizer_, 0);
  EXPECT_FALSE(bad.Extract(d).ok());
}

TEST_F(SignatureTest, EmptyTrajectoryGetsEmptySignature) {
  Dataset d;
  ASSERT_TRUE(d.Add(Trajectory(1)).ok());
  ASSERT_TRUE(d.Add(Visits(2, {{{100, 100}, 2}})).ok());
  SignatureExtractor extractor(&quantizer_, 3);
  auto sig = extractor.Extract(d);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(sig->per_traj[0].empty());
  EXPECT_EQ(sig->per_traj[1].size(), 1u);
}

}  // namespace
}  // namespace frt
