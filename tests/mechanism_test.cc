// Tests for the randomization mechanisms (Algorithms 1 and 2) and the
// FrequencyRandomizer pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/global_mechanism.h"
#include "core/local_mechanism.h"
#include "core/pipeline.h"
#include "synth/workload.h"

namespace frt {
namespace {

// Small but realistic world shared by the mechanism tests.
class MechanismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig wcfg;
    wcfg.num_taxis = 15;
    wcfg.target_points = 120;
    RoadGenConfig rcfg;
    rcfg.cols = 10;
    rcfg.rows = 10;
    auto w = GenerateTaxiWorkload(wcfg, rcfg, 7);
    ASSERT_TRUE(w.ok());
    workload_ = new Workload(std::move(*w));

    BBox region = workload_->dataset.Bounds();
    const double pad = 0.01 * std::max(region.Width(), region.Height());
    region.min_x -= pad;
    region.min_y -= pad;
    region.max_x += pad;
    region.max_y += pad;
    quantizer_ = new Quantizer(region, 11);
    quantizer_->RegisterDataset(workload_->dataset);
    SignatureExtractor extractor(quantizer_, 5);
    auto sig = extractor.Extract(workload_->dataset);
    ASSERT_TRUE(sig.ok());
    signatures_ = new SignatureSet(std::move(*sig));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete quantizer_;
    delete signatures_;
  }

  static Workload* workload_;
  static Quantizer* quantizer_;
  static SignatureSet* signatures_;
};

Workload* MechanismTest::workload_ = nullptr;
Quantizer* MechanismTest::quantizer_ = nullptr;
SignatureSet* MechanismTest::signatures_ = nullptr;

TEST_F(MechanismTest, LocalSelectPointsPrefersOwnSignature) {
  LocalMechanismConfig cfg;
  LocalMechanism mech(quantizer_, cfg);
  Rng rng(1);
  const PointFrequency pf =
      ComputePointFrequency(workload_->dataset[0], *quantizer_);
  const auto selected =
      mech.SelectPoints(signatures_->per_traj[0], *signatures_, pf, rng);
  ASSERT_GE(selected.size(), signatures_->per_traj[0].size());
  EXPECT_LE(selected.size(), 2u * signatures_->m);
  for (size_t i = 0; i < signatures_->per_traj[0].size(); ++i) {
    EXPECT_EQ(selected[i], signatures_->per_traj[0][i].key)
        << "own signature must come first, rank " << i;
  }
  // No duplicates.
  std::unordered_set<LocationKey> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), selected.size());
}

TEST_F(MechanismTest, LocalMechanismReducesSignatureFrequencies) {
  LocalMechanismConfig cfg;
  cfg.epsilon = 1.0;
  LocalMechanism mech(quantizer_, cfg);
  Rng rng(2);
  PrivacyAccountant accountant;
  LocalReport report;
  auto out = mech.Apply(workload_->dataset, *signatures_, rng, &accountant,
                        &report);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(accountant.spent(), 1.0);
  EXPECT_EQ(report.trajectories_processed, workload_->dataset.size());

  // Stage-1 uses Lap(-f_k, 1/eps): across users, the total frequency of
  // top-signature locations must drop sharply.
  int64_t before = 0;
  int64_t after = 0;
  for (size_t i = 0; i < workload_->dataset.size(); ++i) {
    const PointFrequency pf_before =
        ComputePointFrequency(workload_->dataset[i], *quantizer_);
    const PointFrequency pf_after =
        ComputePointFrequency((*out)[i], *quantizer_);
    for (const auto& wl : signatures_->per_traj[i]) {
      before += wl.pf;
      auto it = pf_after.find(wl.key);
      after += (it == pf_after.end()) ? 0 : it->second;
      (void)pf_before;
    }
  }
  EXPECT_LT(after, before / 4) << "signature PF should collapse";
}

TEST_F(MechanismTest, LocalStage2KeepsCardinalityStable) {
  LocalMechanismConfig cfg;
  cfg.epsilon = 1.0;
  LocalMechanism mech(quantizer_, cfg);
  Rng rng(3);
  LocalReport report;
  auto out = mech.Apply(workload_->dataset, *signatures_, rng, nullptr,
                        &report);
  ASSERT_TRUE(out.ok());
  const double before =
      static_cast<double>(workload_->dataset.TotalPoints());
  const double after = static_cast<double>(out->TotalPoints());
  // Without Stage-2 the dataset would shrink by the whole signature mass
  // (tested in the ablation bench); with it, the drift stays moderate.
  EXPECT_GT(after, 0.75 * before);
  EXPECT_LT(after, 1.25 * before);
}

TEST_F(MechanismTest, GlobalMechanismMovesTfTowardPerturbed) {
  GlobalMechanismConfig cfg;
  cfg.epsilon = 1.0;
  GlobalMechanism mech(quantizer_, cfg);
  Rng rng(4);
  PrivacyAccountant accountant;
  GlobalReport report;
  auto out = mech.Apply(workload_->dataset, *signatures_, rng, &accountant,
                        &report);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(accountant.spent(), 1.0);
  EXPECT_EQ(report.points_perturbed, signatures_->candidate_set.size());
  EXPECT_EQ(out->size(), workload_->dataset.size());

  // The (integer) TF changes reported must be reflected in the output: the
  // total |TF' - TF| across P should be close to the reported noise mass
  // (insert shortfall can only reduce it).
  const TrajectoryFrequency tf_before =
      ComputeTrajectoryFrequency(workload_->dataset, *quantizer_);
  const TrajectoryFrequency tf_after =
      ComputeTrajectoryFrequency(*out, *quantizer_);
  int64_t achieved = 0;
  for (const LocationKey key : signatures_->candidate_set) {
    const int64_t b = tf_before.count(key) ? tf_before.at(key) : 0;
    const int64_t a = tf_after.count(key) ? tf_after.at(key) : 0;
    achieved += std::llabs(a - b);
  }
  EXPECT_GT(achieved, 0);
  EXPECT_LE(achieved, report.total_abs_tf_change);
  EXPECT_GE(achieved, report.total_abs_tf_change / 2);
}

TEST_F(MechanismTest, PipelineVariantsReportCorrectBudget) {
  Rng rng(5);
  {
    FrequencyRandomizerConfig cfg;
    cfg.epsilon_global = 0.0;
    cfg.epsilon_local = 0.7;
    cfg.m = 5;
    FrequencyRandomizer pure_l(cfg);
    EXPECT_EQ(pure_l.name(), "PureL");
    auto out = pure_l.Anonymize(workload_->dataset, rng);
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(pure_l.report().epsilon_spent, 0.7);
    EXPECT_EQ(pure_l.report().global.points_perturbed, 0u);
  }
  {
    FrequencyRandomizerConfig cfg;
    cfg.epsilon_global = 0.4;
    cfg.epsilon_local = 0.0;
    cfg.m = 5;
    FrequencyRandomizer pure_g(cfg);
    EXPECT_EQ(pure_g.name(), "PureG");
    auto out = pure_g.Anonymize(workload_->dataset, rng);
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(pure_g.report().epsilon_spent, 0.4);
  }
  {
    FrequencyRandomizerConfig cfg;
    cfg.epsilon_global = 0.5;
    cfg.epsilon_local = 0.5;
    cfg.m = 5;
    FrequencyRandomizer gl(cfg);
    EXPECT_EQ(gl.name(), "GL");
    auto out = gl.Anonymize(workload_->dataset, rng);
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(gl.report().epsilon_spent, 1.0);
    EXPECT_GT(gl.report().candidate_set_size, 0u);
  }
}

TEST_F(MechanismTest, PipelineDeterministicForSeed) {
  FrequencyRandomizerConfig cfg;
  cfg.m = 5;
  FrequencyRandomizer a(cfg);
  FrequencyRandomizer b(cfg);
  Rng rng_a(99);
  Rng rng_b(99);
  auto out_a = a.Anonymize(workload_->dataset, rng_a);
  auto out_b = b.Anonymize(workload_->dataset, rng_b);
  ASSERT_TRUE(out_a.ok());
  ASSERT_TRUE(out_b.ok());
  ASSERT_EQ(out_a->size(), out_b->size());
  for (size_t i = 0; i < out_a->size(); ++i) {
    ASSERT_EQ((*out_a)[i].size(), (*out_b)[i].size()) << "traj " << i;
    for (size_t p = 0; p < (*out_a)[i].size(); ++p) {
      ASSERT_EQ((*out_a)[i][p].p, (*out_b)[i][p].p);
    }
  }
}

TEST_F(MechanismTest, OrderIsExchangeable) {
  // Both orders must run cleanly and spend the same budget (outputs differ
  // randomly, which is fine).
  for (const MechanismOrder order :
       {MechanismOrder::kLocalFirst, MechanismOrder::kGlobalFirst}) {
    FrequencyRandomizerConfig cfg;
    cfg.order = order;
    cfg.m = 5;
    FrequencyRandomizer gl(cfg);
    Rng rng(11);
    auto out = gl.Anonymize(workload_->dataset, rng);
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(gl.report().epsilon_spent, 1.0);
    EXPECT_EQ(out->size(), workload_->dataset.size());
  }
}

TEST_F(MechanismTest, HigherEpsilonInjectsLessNoise) {
  auto total_change = [&](double eps) {
    FrequencyRandomizerConfig cfg;
    cfg.epsilon_global = 0.0;
    cfg.epsilon_local = eps;
    cfg.m = 5;
    FrequencyRandomizer r(cfg);
    Rng rng(123);
    auto out = r.Anonymize(workload_->dataset, rng);
    EXPECT_TRUE(out.ok());
    return r.report().local.total_abs_frequency_change;
  };
  const int64_t noisy = total_change(0.1);
  const int64_t quiet = total_change(10.0);
  EXPECT_GT(noisy, quiet);
}

TEST_F(MechanismTest, RejectsEmptyDataset) {
  FrequencyRandomizer r(FrequencyRandomizerConfig{});
  Rng rng(1);
  EXPECT_FALSE(r.Anonymize(Dataset{}, rng).ok());
}

}  // namespace
}  // namespace frt
