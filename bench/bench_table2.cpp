// Reproduces paper Table II: "A summary of effectiveness evaluation
// results (|D| = 1000 and eps = 1.0)".
//
// For every compared method this harness reports:
//   Privacy:  LAs LAt LAst LAsq (linking accuracy per signature type), MI
//   Utility:  INF DE TE FFP
//   Recovery: Precision Recall F-score RMF Accuracy
//
// Default scale is |D| = 240 with ~220-point trajectories (minutes on a
// laptop); FRT_SCALE=full restores the paper's |D| = 1000. A "Raw" column
// (publish unmodified) is included as the no-protection reference, which
// the paper leaves implicit.

#include <cstdio>

#include "bench_common.h"

namespace frt::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const uint64_t seed = MasterSeed();
  const int num_taxis = full ? 1000 : 240;
  const int target_points = full ? 1813 : 220;

  std::printf("=== Table II reproduction: |D| = %d, eps = 1.0, m = 10 ===\n",
              num_taxis);
  std::printf("(FRT_SCALE=%s, FRT_SEED=%llu)\n\n", full ? "full" : "default",
              static_cast<unsigned long long>(seed));

  Stopwatch total;
  Workload workload = BuildWorkload(num_taxis, target_points, seed);
  std::printf("workload: %zu taxis, %zu points, avg length %.0f "
              "(built in %.1fs)\n\n",
              workload.dataset.size(), workload.dataset.TotalPoints(),
              workload.dataset.AvgLength(), total.ElapsedSeconds());

  Linker linker(workload.dataset.Bounds());
  linker.Train(workload.dataset);
  UtilityEvaluator utility(workload.dataset.Bounds());

  std::vector<EvalRow> rows;
  {
    // No-protection reference row.
    Method raw{std::make_unique<IdentityAnonymizer>(), true, true};
    rows.push_back(EvaluateMethod(raw, workload, linker, utility, seed));
    std::printf("  evaluated %-9s (%.1fs)\n", "Raw",
                total.ElapsedSeconds());
  }
  for (Method& method : TableTwoMethods(&workload.network)) {
    rows.push_back(EvaluateMethod(method, workload, linker, utility, seed));
    std::printf("  evaluated %-9s (%.1fs)\n", rows.back().name.c_str(),
                total.ElapsedSeconds());
  }
  std::printf("\n");

  PrintHeader(rows);
  std::printf("--- Privacy ---\n");
  PrintMetricRow("LAs", rows, [](const EvalRow& r) { return r.la_s; },
                 false, false);
  PrintMetricRow("LAt", rows, [](const EvalRow& r) { return r.la_t; },
                 true, false);
  PrintMetricRow("LAst", rows, [](const EvalRow& r) { return r.la_st; },
                 true, false);
  PrintMetricRow("LAsq", rows, [](const EvalRow& r) { return r.la_sq; },
                 false, false);
  PrintMetricRow("MI", rows, [](const EvalRow& r) { return r.mi; }, false,
                 false);
  std::printf("--- Utility ---\n");
  PrintMetricRow("INF", rows, [](const EvalRow& r) { return r.inf; },
                 false, false);
  PrintMetricRow("DE", rows, [](const EvalRow& r) { return r.de; }, false,
                 false);
  PrintMetricRow("TE", rows, [](const EvalRow& r) { return r.te; }, false,
                 false);
  PrintMetricRow("FFP", rows, [](const EvalRow& r) { return r.ffp; },
                 false, false);
  std::printf("--- Recovery ---\n");
  PrintMetricRow("Precision", rows,
                 [](const EvalRow& r) { return r.recovery.precision; },
                 false, true);
  PrintMetricRow("Recall", rows,
                 [](const EvalRow& r) { return r.recovery.recall; }, false,
                 true);
  PrintMetricRow("F-score", rows,
                 [](const EvalRow& r) { return r.recovery.f_score; }, false,
                 true);
  PrintMetricRow("RMF", rows,
                 [](const EvalRow& r) { return r.recovery.rmf; }, false,
                 true);
  PrintMetricRow("Accuracy", rows,
                 [](const EvalRow& r) { return r.recovery.accuracy; },
                 false, true);
  std::printf("--- Cost ---\n");
  PrintMetricRow("Anon(s)", rows,
                 [](const EvalRow& r) { return r.anonymize_seconds; },
                 false, false);
  std::printf("\ntotal wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace frt::bench

int main() { return frt::bench::Run(); }
