// bench_serve — multi-feed serving layer scaling study (google-benchmark).
//
// Three claims, machine-checkable from the emitted counters (recorded into
// BENCH_serve.json via tools/bench_report.py):
//
//   ServeMultiplexedFeeds/N   N in {2,4,8,16} feeds multiplexed through
//                             one shared pool: throughput
//                             (items_per_second = published trajectories)
//                             and per-iteration window counts. `feeds`
//                             documents the concurrency level.
//   ServeIsolationCheck/8     1 hog feed (recycling ids, exhausts its
//                             per-object budget) + 7 victims. Every feed's
//                             multiplexed output is compared bit-for-bit
//                             against its SOLO run at the same master
//                             seed: isolation_bit_identical must be 1 and
//                             hog_windows_refused > 0 (the hog really ran
//                             dry while the victims noticed nothing).
//   ServeDeadlineClose/8      8 trickle feeds that never fill a
//                             count-based window; --close-after-ms style
//                             deadline closure must bound the close-wait
//                             tail: deadline_met is 1 iff
//                             close_wait_p99_ms < deadline_ms.
//   ServeCheckpoint           every iteration runs the same 8-feed
//                             workload twice — durable budget ledgers off,
//                             then on (write-ahead snapshot + fsync before
//                             every publish flush) — and reports the
//                             paired throughput ratio
//                             (checkpoint_throughput_ratio) plus
//                             checkpoints_per_iter. The acceptance claim
//                             is ratio >= 0.9: checkpointing costs at
//                             most 10% at production window sizes.
//   ServeTraceOverhead        the same paired design for span tracing:
//                             recorder disarmed, then armed (dump drained
//                             and discarded). trace_throughput_ratio is
//                             the armed/disarmed throughput ratio; the
//                             disarmed half doubles as the compiled-in-
//                             but-disabled neutrality figure against the
//                             committed baseline (claim: ratio >= 0.97).
//   ServeAdminScrapeOverhead  the same ABBA-paired design for the admin
//                             introspection plane: a 16-feed run with no
//                             admin listener vs the same run scraped at
//                             10 Hz (GET /metrics + GET /feedz) over a
//                             Unix socket. admin_scrape_throughput_ratio
//                             is scraped/unscraped throughput; the claim
//                             is ratio >= 0.99 — handlers only read
//                             registry atomics and snapshot copies, so a
//                             live scraper must be throughput-neutral.
//   DispatcherWakeup/N        N in {16,256,2048} dormant feeds each hold
//                             an armed (never-due) close deadline while
//                             one hot feed drives 40 windows through the
//                             dispatcher loop. With the min-deadline heap
//                             the timed hot phase must stay flat in N
//                             (the old per-wakeup deadline rescan was
//                             O(feeds)).
//   EdgeAggregator/E          E in {2,4,8} scripted edges stream
//                             pre-encoded frames (hello + 200 trajectory
//                             frames + bye each) over a Unix-socket
//                             loopback into one IngressServer feeding a
//                             live dispatcher: end-to-end framed ingest
//                             throughput scaling with edge count.
//
// The container may be single-core: throughput numbers are modest there,
// but the isolation and deadline claims are scheduling-independent.

#include <benchmark/benchmark.h>

#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/ingress.h"
#include "net/socket.h"
#include "obs/admin_server.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "service/dispatcher.h"
#include "stream/ingest.h"
#include "traj/trajectory.h"

namespace {

constexpr uint64_t kSeed = 42;

/// Deterministic arrivals; ids recycle modulo `distinct_ids` when > 0.
std::vector<frt::Trajectory> FeedArrivals(int arrivals, int distinct_ids) {
  std::vector<frt::Trajectory> out;
  out.reserve(arrivals);
  for (int i = 0; i < arrivals; ++i) {
    const int id = distinct_ids > 0 ? i % distinct_ids : i;
    const int points = 24 + (i * 7) % 13;
    double x = 200.0 + (i * 137) % 1700;
    double y = 300.0 + (i * 251) % 1500;
    int64_t t = 1000 + i;
    frt::Trajectory traj(id);
    for (int j = 0; j < points; ++j) {
      traj.Append(frt::Point{x, y}, t);
      x += 35.0 + (j * 11) % 20;
      y += 25.0 + ((i + j) * 13) % 30;
      t += 60;
    }
    out.push_back(std::move(traj));
  }
  return out;
}

frt::ServiceConfig BaseConfig() {
  frt::ServiceConfig config;
  config.stream.window_size = 10;
  config.stream.batch.shards = 2;
  config.stream.batch.pipeline.m = 3;
  config.stream.batch.pipeline.epsilon_global = 0.5;
  config.stream.batch.pipeline.epsilon_local = 0.5;
  config.pool_threads = 4;
  return config;
}

frt::ServiceSink CountingSink(size_t* trajectories) {
  return [trajectories](const std::string&, const frt::Dataset& published,
                        const frt::WindowReport&) -> frt::Status {
    *trajectories += published.size();
    return frt::Status::OK();
  };
}

void BM_ServeMultiplexedFeeds(benchmark::State& state) {
  const int feeds = static_cast<int>(state.range(0));
  const int arrivals_per_feed = 60;
  const std::vector<frt::Trajectory> arrivals =
      FeedArrivals(arrivals_per_feed, 0);
  std::vector<std::string> names;
  names.reserve(feeds);
  for (int f = 0; f < feeds; ++f) {
    names.push_back("feed" + std::to_string(f));
  }
  size_t published = 0;
  size_t windows = 0;
  for (auto _ : state) {
    frt::ServiceDispatcher service(BaseConfig(), CountingSink(&published));
    if (!service.Start(kSeed).ok()) {
      state.SkipWithError("service failed to start");
      return;
    }
    for (const frt::Trajectory& t : arrivals) {
      for (const std::string& name : names) {
        if (!service.Offer(name, t)) {
          state.SkipWithError("offer rejected");
          return;
        }
      }
    }
    if (!service.Finish().ok()) {
      state.SkipWithError("service run failed");
      return;
    }
    windows += service.report().windows_published;
  }
  state.SetItemsProcessed(static_cast<int64_t>(published));
  state.counters["feeds"] = static_cast<double>(feeds);
  state.counters["pool_workers"] = 4.0;
  state.counters["windows_per_iter"] =
      benchmark::Counter(static_cast<double>(windows),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ServeMultiplexedFeeds)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Minimal bit-level capture: feed -> flat list of (id, points).
struct Capture {
  std::map<std::string,
           std::vector<std::pair<frt::TrajId,
                                 std::vector<frt::TimedPoint>>>>
      feeds;
  frt::ServiceSink MakeSink() {
    return [this](const std::string& feed, const frt::Dataset& published,
                  const frt::WindowReport&) -> frt::Status {
      auto& rows = feeds[feed];
      for (const auto& t : published.trajectories()) {
        rows.emplace_back(t.id(), t.points());
      }
      return frt::Status::OK();
    };
  }
};

void BM_ServeIsolationCheck(benchmark::State& state) {
  const int feeds = static_cast<int>(state.range(0));
  frt::ServiceConfig config = BaseConfig();
  config.stream.window_size = 5;
  config.stream.accounting = frt::BudgetAccounting::kPerObject;
  config.stream.per_object_budget = 2.0;

  std::vector<std::string> names = {"hog"};
  std::vector<std::vector<frt::Trajectory>> arrivals;
  arrivals.push_back(FeedArrivals(30, 5));  // ids recycle 6x: runs dry
  for (int f = 1; f < feeds; ++f) {
    names.push_back("victim" + std::to_string(f));
    arrivals.push_back(FeedArrivals(30, 0));
  }

  double identical = 1.0;
  double hog_refused = 0.0;
  for (auto _ : state) {
    // Solo baselines.
    std::vector<Capture> solo(feeds);
    for (int f = 0; f < feeds; ++f) {
      frt::ServiceDispatcher service(config, solo[f].MakeSink());
      if (!service.Start(kSeed).ok()) {
        state.SkipWithError("solo start failed");
        return;
      }
      for (const frt::Trajectory& t : arrivals[f]) {
        service.Offer(names[f], t);
      }
      if (!service.Finish().ok()) {
        state.SkipWithError("solo run failed");
        return;
      }
    }
    // Multiplexed, round-robin interleaved.
    Capture multi;
    frt::ServiceDispatcher service(config, multi.MakeSink());
    if (!service.Start(kSeed).ok()) {
      state.SkipWithError("multiplexed start failed");
      return;
    }
    for (size_t i = 0; i < arrivals[0].size(); ++i) {
      for (int f = 0; f < feeds; ++f) {
        service.Offer(names[f], arrivals[f][i]);
      }
    }
    if (!service.Finish().ok()) {
      state.SkipWithError("multiplexed run failed");
      return;
    }
    for (int f = 0; f < feeds; ++f) {
      if (multi.feeds[names[f]] != solo[f].feeds[names[f]]) {
        identical = 0.0;
      }
    }
    for (const frt::FeedReport& feed : service.report().feeds_report) {
      if (feed.feed == "hog") {
        hog_refused = static_cast<double>(feed.stream.windows_refused);
      }
    }
  }
  state.counters["feeds"] = static_cast<double>(feeds);
  state.counters["isolation_bit_identical"] = identical;
  state.counters["hog_windows_refused"] = hog_refused;
}
BENCHMARK(BM_ServeIsolationCheck)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServeDeadlineClose(benchmark::State& state) {
  const int feeds = static_cast<int>(state.range(0));
  const int64_t deadline_ms = 150;
  frt::ServiceConfig config = BaseConfig();
  config.stream.window_size = 1000;  // count closure never fires
  config.stream.close_after_ms = deadline_ms;

  const std::vector<frt::Trajectory> arrivals = FeedArrivals(32, 0);
  std::vector<std::string> names;
  for (int f = 0; f < feeds; ++f) {
    names.push_back("live" + std::to_string(f));
  }
  double p50 = 0.0, p99 = 0.0, worst = 0.0, deadline_windows = 0.0;
  for (auto _ : state) {
    size_t published = 0;
    frt::ServiceDispatcher service(config, CountingSink(&published));
    if (!service.Start(kSeed).ok()) {
      state.SkipWithError("service failed to start");
      return;
    }
    // Trickle: one arrival per feed every 10 ms — a window would need
    // 10 s to fill by count, so only the deadline can close it.
    for (const frt::Trajectory& t : arrivals) {
      for (const std::string& name : names) {
        service.Offer(name, t);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!service.Finish().ok()) {
      state.SkipWithError("service run failed");
      return;
    }
    const frt::ServiceReport& report = service.report();
    p50 = report.close_wait_p50_ms;
    p99 = report.close_wait_p99_ms;
    worst = report.close_wait_max_ms;
    deadline_windows =
        static_cast<double>(report.windows_deadline_closed);
  }
  state.counters["feeds"] = static_cast<double>(feeds);
  state.counters["deadline_ms"] = static_cast<double>(deadline_ms);
  state.counters["close_wait_p50_ms"] = p50;
  state.counters["close_wait_p99_ms"] = p99;
  state.counters["close_wait_max_ms"] = worst;
  state.counters["windows_deadline_closed"] = deadline_windows;
  state.counters["deadline_met"] =
      (p99 > 0.0 && p99 < static_cast<double>(deadline_ms)) ? 1.0 : 0.0;
}
BENCHMARK(BM_ServeDeadlineClose)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServeCheckpoint(benchmark::State& state) {
  const int feeds = 8;
  // Production-shaped windows (100 trajectories; the CLI default is
  // --window 1000, the scaling study above uses 10-trajectory
  // micro-windows): the write-ahead fsync is a fixed cost per publish
  // flush, so the overhead claim is stated at a window size where real
  // deployments run, not at a size that is all fsync.
  const int arrivals_per_feed = 200;
  const std::vector<frt::Trajectory> arrivals =
      FeedArrivals(arrivals_per_feed, 0);
  std::vector<std::string> names;
  names.reserve(feeds);
  for (int f = 0; f < feeds; ++f) {
    names.push_back("feed" + std::to_string(f));
  }

  // A fresh state dir per durable run: recovery is NOT part of the
  // measured path, only the write-ahead snapshot+fsync on every publish
  // flush.
  std::string templ = "/tmp/frt_bench_ckpt_XXXXXX";
  if (mkdtemp(templ.data()) == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const std::string state_dir = templ;

  // One service run; returns wall seconds, or < 0 on failure.
  size_t checkpoints = 0;
  auto run_once = [&](bool durable, size_t* published) -> double {
    frt::ServiceConfig config = BaseConfig();
    config.stream.window_size = 100;
    config.stream.batch.pipeline.m = 5;
    if (durable) {
      // Start cold every time (first boot, no recovery).
      ::unlink((state_dir + "/budget_ledgers.ckpt").c_str());
      config.state_dir = state_dir;
      config.checkpoint_interval_ms = 50;
    }
    frt::ServiceDispatcher service(config, CountingSink(published));
    const auto start = std::chrono::steady_clock::now();
    if (!service.Start(kSeed).ok()) return -1.0;
    for (const frt::Trajectory& t : arrivals) {
      for (const std::string& name : names) {
        if (!service.Offer(name, t)) return -1.0;
      }
    }
    if (!service.Finish().ok()) return -1.0;
    checkpoints += service.report().checkpoints_written;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Paired off/on halves inside every iteration: scheduling drift on a
  // shared host moves both halves together, so the ratio is stable even
  // when absolute throughput wobbles run to run.
  double off_seconds = 0.0, on_seconds = 0.0;
  size_t off_published = 0, on_published = 0;
  for (auto _ : state) {
    const double off = run_once(false, &off_published);
    const double on = run_once(true, &on_published);
    if (off < 0.0 || on < 0.0) {
      state.SkipWithError("service run failed");
      return;
    }
    off_seconds += off;
    on_seconds += on;
  }
  ::unlink((state_dir + "/budget_ledgers.ckpt").c_str());
  ::rmdir(state_dir.c_str());
  state.SetItemsProcessed(
      static_cast<int64_t>(off_published + on_published));
  const double off_rate =
      off_seconds > 0.0 ? static_cast<double>(off_published) / off_seconds
                        : 0.0;
  const double on_rate =
      on_seconds > 0.0 ? static_cast<double>(on_published) / on_seconds
                       : 0.0;
  state.counters["feeds"] = static_cast<double>(feeds);
  state.counters["throughput_off_per_s"] = off_rate;
  state.counters["throughput_on_per_s"] = on_rate;
  state.counters["checkpoint_throughput_ratio"] =
      off_rate > 0.0 ? on_rate / off_rate : 0.0;
  state.counters["checkpoints_per_iter"] =
      benchmark::Counter(static_cast<double>(checkpoints),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ServeCheckpoint)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ServeTraceOverhead(benchmark::State& state) {
  const int feeds = 8;
  // Same production-shaped workload as the checkpoint study: the span
  // emit sites fire per window stage, so overhead is stated where the
  // window-to-span ratio matches real deployments.
  const int arrivals_per_feed = 200;
  const std::vector<frt::Trajectory> arrivals =
      FeedArrivals(arrivals_per_feed, 0);
  std::vector<std::string> names;
  names.reserve(feeds);
  for (int f = 0; f < feeds; ++f) {
    names.push_back("feed" + std::to_string(f));
  }

  auto run_once = [&](size_t* published) -> double {
    frt::ServiceConfig config = BaseConfig();
    config.stream.window_size = 100;
    config.stream.batch.pipeline.m = 5;
    frt::ServiceDispatcher service(config, CountingSink(published));
    const auto start = std::chrono::steady_clock::now();
    if (!service.Start(kSeed).ok()) return -1.0;
    for (const frt::Trajectory& t : arrivals) {
      for (const std::string& name : names) {
        if (!service.Offer(name, t)) return -1.0;
      }
    }
    if (!service.Finish().ok()) return -1.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Mirrored pairs per iteration (off,on then on,off — see
  // BM_ServeCheckpoint for the paired rationale): a single ~100 ms
  // service run is noisy enough (thread spawn, scheduler) to swamp the
  // span cost, and always running the armed half second would fold any
  // monotone drift (frequency throttling, cache state) into the ratio.
  // The ABBA order cancels linear drift exactly. The disabled halves
  // also document that the compiled-in instrumentation is free — compare
  // their throughput against the committed pre-obs baseline via
  // bench_report.py's speedup_vs_baseline.
  double off_seconds = 0.0, on_seconds = 0.0;
  size_t off_published = 0, on_published = 0;
  size_t spans = 0, dropped = 0;
  {
    // Untimed warmup: the first service run pays one-off costs (thread
    // spawn, allocator growth, page faults) that would bias whichever
    // half runs first.
    size_t warmup_published = 0;
    if (run_once(&warmup_published) < 0.0) {
      state.SkipWithError("service warmup run failed");
      return;
    }
  }
  for (auto _ : state) {
    double off = 0.0, on = 0.0;
    bool failed = false;
    for (const bool armed : {false, true, true, false}) {
      if (armed) {
        frt::obs::TraceRecorder::Options trace_options;
        // Production arms once per process; this study arms per ~0.2 s
        // run with freshly spawned threads, so the rings are faulted in
        // inside the timed region every time. Size them to the run's
        // actual per-thread span load (~2k spans/run total, zero drops
        // observed at 1024/thread) so the measured ratio is the
        // steady-state emit cost, not the one-off 4 MiB/thread
        // default-ring page-in that a long-lived service amortizes to
        // zero.
        trace_options.buffer_events = 1024;
        frt::obs::TraceRecorder::Get().Start(trace_options);
      }
      const double elapsed =
          run_once(armed ? &on_published : &off_published);
      if (armed) {
        const frt::obs::TraceDump dump =
            frt::obs::TraceRecorder::Get().Stop();
        spans += dump.events.size();
        dropped += dump.dropped;
      }
      if (elapsed < 0.0) failed = true;
      (armed ? on : off) += elapsed;
    }
    if (failed) {
      state.SkipWithError("service run failed");
      return;
    }
    off_seconds += off;
    on_seconds += on;
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(off_published + on_published));
  const double off_rate =
      off_seconds > 0.0 ? static_cast<double>(off_published) / off_seconds
                        : 0.0;
  const double on_rate =
      on_seconds > 0.0 ? static_cast<double>(on_published) / on_seconds
                       : 0.0;
  state.counters["feeds"] = static_cast<double>(feeds);
  state.counters["throughput_off_per_s"] = off_rate;
  state.counters["throughput_on_per_s"] = on_rate;
  state.counters["trace_throughput_ratio"] =
      off_rate > 0.0 ? on_rate / off_rate : 0.0;
  state.counters["spans_per_iter"] = benchmark::Counter(
      static_cast<double>(spans), benchmark::Counter::kAvgIterations);
  state.counters["spans_dropped_per_iter"] = benchmark::Counter(
      static_cast<double>(dropped), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ServeTraceOverhead)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// One scrape: HTTP/1.0 GET over the admin Unix socket, response drained
/// to EOF. Returns false if the connection or write failed.
bool AdminGet(const frt::net::Endpoint& endpoint,
              const std::string& target) {
  auto conn = frt::net::ConnectTo(endpoint);
  if (!conn.ok()) return false;
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  if (!frt::net::WriteAll(conn->fd(), request.data(), request.size())
           .ok()) {
    return false;
  }
  ::shutdown(conn->fd(), SHUT_WR);
  char buf[4096];
  size_t total = 0;
  for (;;) {
    const ssize_t n = ::recv(conn->fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    total += static_cast<size_t>(n);
  }
  return total > 0;
}

void BM_ServeAdminScrapeOverhead(benchmark::State& state) {
  // The admin plane's core contract quantified: handlers only read
  // registry atomics and SnapshotBoard copies, so a live 10 Hz scraper
  // (a Prometheus server plus a curl-happy operator) must not move
  // serving throughput. 16 feeds through one shared pool, ABBA-mirrored
  // unscraped/scraped halves per iteration (see BM_ServeTraceOverhead
  // for the pairing rationale).
  const int feeds = 16;
  const int arrivals_per_feed = 100;
  const std::vector<frt::Trajectory> arrivals =
      FeedArrivals(arrivals_per_feed, 0);
  std::vector<std::string> names;
  names.reserve(feeds);
  for (int f = 0; f < feeds; ++f) {
    names.push_back("feed" + std::to_string(f));
  }

  int round = 0;
  size_t scrapes = 0, failed_scrapes = 0;
  auto run_once = [&](bool scraped, size_t* published) -> double {
    frt::ServiceConfig config = BaseConfig();
    config.stream.window_size = 100;
    config.stream.batch.pipeline.m = 5;
    config.metrics_interval_ms = 100;  // live introspection board ticks
    frt::ServiceDispatcher service(config, CountingSink(published));

    std::unique_ptr<frt::obs::AdminServer> admin;
    std::thread scraper;
    std::atomic<bool> stop_scraper{false};
    frt::net::Endpoint endpoint;
    if (scraped) {
      endpoint.kind = frt::net::Endpoint::Kind::kUnix;
      endpoint.path = "/tmp/frt_bench_admin_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(round++) + ".sock";
      frt::obs::AdminServer::Options options;
      options.endpoint = endpoint;
      admin = std::make_unique<frt::obs::AdminServer>(options);
      frt::ServiceDispatcher* service_ptr = &service;
      admin->Handle(
          "GET", "/feedz",
          [service_ptr](const frt::obs::HttpRequest&) {
            frt::obs::HttpResponse response;
            response.content_type = "application/json";
            const auto intro = service_ptr->Introspect();
            if (intro == nullptr) {
              response.status = 503;
              response.body = "{\"error\":\"starting\"}\n";
              return response;
            }
            std::string body = "{\"feed\":[";
            for (size_t i = 0; i < intro->feeds_detail.size(); ++i) {
              const auto& feed = intro->feeds_detail[i];
              if (i > 0) body += ',';
              body += "{\"feed\":\"" + feed.feed + "\",\"eps_spent\":" +
                      std::to_string(feed.epsilon_spent) + "}";
            }
            body += "]}\n";
            response.body = std::move(body);
            return response;
          });
      if (!admin->Start().ok()) return -1.0;
      scraper = std::thread([&endpoint, &stop_scraper, &scrapes,
                             &failed_scrapes] {
        // 10 Hz alternating /metrics and /feedz — both endpoints every
        // 200 ms, the cadence a Prometheus scrape_interval of a few
        // seconds would comfortably exceed.
        while (!stop_scraper.load(std::memory_order_relaxed)) {
          ++scrapes;
          if (!AdminGet(endpoint, "/metrics")) ++failed_scrapes;
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          if (stop_scraper.load(std::memory_order_relaxed)) break;
          ++scrapes;
          if (!AdminGet(endpoint, "/feedz")) ++failed_scrapes;
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
    }

    const auto start = std::chrono::steady_clock::now();
    double elapsed = -1.0;
    if (service.Start(kSeed).ok()) {
      bool offered = true;
      for (const frt::Trajectory& t : arrivals) {
        for (const std::string& name : names) {
          if (!service.Offer(name, t)) {
            offered = false;
            break;
          }
        }
        if (!offered) break;
      }
      if (offered && service.Finish().ok()) {
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      }
    }
    if (scraped) {
      stop_scraper.store(true, std::memory_order_relaxed);
      scraper.join();
      admin->Stop();
    }
    return elapsed;
  };

  {
    // Untimed warmup (see BM_ServeTraceOverhead).
    size_t warmup_published = 0;
    if (run_once(false, &warmup_published) < 0.0) {
      state.SkipWithError("service warmup run failed");
      return;
    }
  }
  double off_seconds = 0.0, on_seconds = 0.0;
  size_t off_published = 0, on_published = 0;
  for (auto _ : state) {
    double off = 0.0, on = 0.0;
    bool failed = false;
    for (const bool scraped : {false, true, true, false}) {
      const double elapsed =
          run_once(scraped, scraped ? &on_published : &off_published);
      if (elapsed < 0.0) failed = true;
      (scraped ? on : off) += elapsed;
    }
    if (failed) {
      state.SkipWithError("service run failed");
      return;
    }
    off_seconds += off;
    on_seconds += on;
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(off_published + on_published));
  const double off_rate =
      off_seconds > 0.0 ? static_cast<double>(off_published) / off_seconds
                        : 0.0;
  const double on_rate =
      on_seconds > 0.0 ? static_cast<double>(on_published) / on_seconds
                       : 0.0;
  state.counters["feeds"] = static_cast<double>(feeds);
  state.counters["throughput_off_per_s"] = off_rate;
  state.counters["throughput_on_per_s"] = on_rate;
  state.counters["admin_scrape_throughput_ratio"] =
      off_rate > 0.0 ? on_rate / off_rate : 0.0;
  state.counters["scrapes_per_iter"] = benchmark::Counter(
      static_cast<double>(scrapes), benchmark::Counter::kAvgIterations);
  state.counters["failed_scrapes_per_iter"] = benchmark::Counter(
      static_cast<double>(failed_scrapes),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ServeAdminScrapeOverhead)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DispatcherWakeup(benchmark::State& state) {
  // Deadline handling must not scale with feed count: N dormant feeds sit
  // with one partial window each and an armed (far-future) close
  // deadline, while one hot feed drives 40 count-closed windows. The old
  // dispatcher rescanned every session's deadline on each loop wakeup
  // (O(feeds) per arrival); the min-deadline heap makes the timed hot
  // phase independent of N — real_time should stay flat from 16 to 2048
  // dormant feeds.
  const int dormant_feeds = static_cast<int>(state.range(0));
  const int hot_windows = 40;
  frt::ServiceConfig config = BaseConfig();
  // Armed on every dormant feed; never due during the run.
  config.stream.close_after_ms = 60 * 1000;
  const std::vector<frt::Trajectory> hot =
      FeedArrivals(hot_windows * 10, 0);
  const frt::Trajectory dormant_arrival = FeedArrivals(1, 0)[0];
  std::vector<std::string> dormant_names;
  dormant_names.reserve(dormant_feeds);
  for (int f = 0; f < dormant_feeds; ++f) {
    dormant_names.push_back("dormant" + std::to_string(f));
  }
  size_t hot_published_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::mutex mu;
    std::condition_variable cv;
    int hot_windows_published = 0;
    frt::ServiceDispatcher service(
        config, [&](const std::string& feed, const frt::Dataset&,
                    const frt::WindowReport&) -> frt::Status {
          if (feed == "hot") {
            std::lock_guard<std::mutex> lock(mu);
            ++hot_windows_published;
            cv.notify_all();
          }
          return frt::Status::OK();
        });
    if (!service.Start(kSeed).ok()) {
      state.SkipWithError("service failed to start");
      return;
    }
    for (const std::string& name : dormant_names) {
      if (!service.Offer(name, dormant_arrival)) {
        state.SkipWithError("offer rejected");
        return;
      }
    }
    state.ResumeTiming();
    // Timed: drive the hot feed through the dispatcher loop while N
    // armed deadlines sit in the heap, and wait until its windows land.
    for (const frt::Trajectory& t : hot) {
      if (!service.Offer("hot", t)) {
        state.SkipWithError("offer rejected");
        return;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return hot_windows_published >= hot_windows; });
    }
    state.PauseTiming();
    // Untimed: the final flush publishes the N dormant partial windows —
    // O(N) work in any implementation, not what this study measures.
    if (!service.Finish().ok()) {
      state.SkipWithError("service run failed");
      return;
    }
    hot_published_total += static_cast<size_t>(hot_windows_published);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * hot.size());
  state.counters["dormant_feeds"] = static_cast<double>(dormant_feeds);
  state.counters["hot_windows_per_iter"] =
      static_cast<double>(hot_windows);
}
BENCHMARK(BM_DispatcherWakeup)
    ->Arg(16)
    ->Arg(256)
    ->Arg(2048)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EdgeAggregator(benchmark::State& state) {
  // The distributed ingress tier end to end on a real Unix-socket
  // loopback: E scripted edges stream pre-encoded trajectory frames into
  // one IngressServer that offers into a live dispatcher. Measures
  // framing + CRC + decode + serve throughput as the edge count grows
  // (items_per_second = trajectories received and published).
  const int edges = static_cast<int>(state.range(0));
  const int trajs_per_edge = 200;
  const std::vector<frt::Trajectory> arrivals =
      FeedArrivals(trajs_per_edge, 0);
  // Encode each edge's whole wire stream once, outside the timed loop:
  // the aggregator side is the system under test.
  std::vector<std::string> wires(static_cast<size_t>(edges));
  for (int e = 0; e < edges; ++e) {
    std::string& wire = wires[static_cast<size_t>(e)];
    frt::net::AppendFrame(&wire, frt::net::FrameType::kHello,
                          "bench-edge");
    const std::string feed = "edge" + std::to_string(e);
    for (const frt::Trajectory& t : arrivals) {
      frt::net::AppendFrame(&wire, frt::net::FrameType::kTrajectory,
                            frt::net::EncodeTrajectoryPayload(feed, t));
    }
    frt::net::AppendFrame(&wire, frt::net::FrameType::kBye, {});
  }
  size_t published = 0;
  size_t quarantines = 0;
  int round = 0;
  for (auto _ : state) {
    frt::ServiceDispatcher service(BaseConfig(), CountingSink(&published));
    if (!service.Start(kSeed).ok()) {
      state.SkipWithError("service failed to start");
      return;
    }
    frt::net::Endpoint endpoint;
    endpoint.kind = frt::net::Endpoint::Kind::kUnix;
    endpoint.path = "/tmp/frt_bench_agg_" + std::to_string(::getpid()) +
                    "_" + std::to_string(round++) + ".sock";
    frt::net::IngressServer::Options options;
    options.endpoint = endpoint;
    options.max_connections = static_cast<size_t>(edges);
    frt::net::IngressServer ingress(
        options,
        [&service](std::string feed, frt::Trajectory t) {
          return service.Offer(std::move(feed), std::move(t));
        },
        [&quarantines](const std::string&, const std::string&) {
          ++quarantines;
        });
    if (!ingress.Start().ok()) {
      state.SkipWithError("ingress failed to start");
      return;
    }
    std::vector<std::thread> senders;
    senders.reserve(static_cast<size_t>(edges));
    for (int e = 0; e < edges; ++e) {
      senders.emplace_back([&, e] {
        auto conn = frt::net::ConnectTo(endpoint);
        if (!conn.ok()) return;
        (void)frt::net::WriteAll(conn->fd(),
                                 wires[static_cast<size_t>(e)].data(),
                                 wires[static_cast<size_t>(e)].size());
      });
    }
    for (std::thread& t : senders) t.join();
    ingress.Wait();
    if (!service.Finish().ok()) {
      state.SkipWithError("service run failed");
      return;
    }
  }
  if (quarantines != 0) {
    state.SkipWithError("unexpected quarantine during clean loopback");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(published));
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["trajs_per_edge"] = static_cast<double>(trajs_per_edge);
}
BENCHMARK(BM_EdgeAggregator)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
