// Index micro-benchmarks (google-benchmark): build, query, and update costs
// of the segment indexes backing Fig. 5's end-to-end numbers, the batched
// SoA kernel A/B, and the shared-index reader-scaling study.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "index/search_context.h"
#include "index/segment_index.h"

namespace frt {
namespace {

constexpr double kRegion = 20000.0;

GridSpec MicroGrid() {
  return GridSpec(BBox::Of({0, 0}, {kRegion, kRegion}), 10);  // 512x512
}

std::vector<SegmentEntry> RandomSegments(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<SegmentEntry> out;
  out.reserve(n);
  for (size_t h = 0; h < n; ++h) {
    const Point a{rng.Uniform(0, kRegion), rng.Uniform(0, kRegion)};
    const Point b{std::clamp(a.x + rng.Uniform(-600, 600), 0.0, kRegion),
                  std::clamp(a.y + rng.Uniform(-600, 600), 0.0, kRegion)};
    out.push_back(SegmentEntry{h, static_cast<TrajId>(h % 256),
                               Segment{a, b}});
  }
  return out;
}

SearchStrategy StrategyOf(int index) {
  static const SearchStrategy kAll[] = {
      SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
      SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
      SearchStrategy::kBottomUpDown};
  return kAll[index];
}

void BM_IndexBuild(benchmark::State& state) {
  const auto strategy = StrategyOf(static_cast<int>(state.range(0)));
  const auto segments = RandomSegments(
      static_cast<size_t>(state.range(1)), 1);
  for (auto _ : state) {
    auto index = MakeSegmentIndex(strategy, MicroGrid());
    for (const auto& e : segments) benchmark::DoNotOptimize(index->Insert(e));
    benchmark::DoNotOptimize(index->size());
  }
  state.SetLabel(std::string(SearchStrategyName(strategy)));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(segments.size()));
}

void BM_IndexKnnSegments(benchmark::State& state) {
  const auto strategy = StrategyOf(static_cast<int>(state.range(0)));
  const auto segments = RandomSegments(
      static_cast<size_t>(state.range(1)), 2);
  auto index = MakeSegmentIndex(strategy, MicroGrid());
  for (const auto& e : segments) (void)index->Insert(e);
  Rng rng(3);
  SearchOptions options;
  options.k = 8;
  const uint64_t evals_before = index->distance_evaluations();
  for (auto _ : state) {
    const Point q{rng.Uniform(0, kRegion), rng.Uniform(0, kRegion)};
    benchmark::DoNotOptimize(index->KNearest(q, options));
  }
  state.SetLabel(std::string(SearchStrategyName(strategy)));
  state.counters["dist_evals_per_query"] = benchmark::Counter(
      static_cast<double>(index->distance_evaluations() - evals_before) /
      static_cast<double>(state.iterations()));
}

// The allocation-free steady state: same workload as BM_IndexKnnSegments
// but through a caller-provided reused SearchContext.
void BM_IndexKnnSegmentsCtx(benchmark::State& state) {
  const auto strategy = StrategyOf(static_cast<int>(state.range(0)));
  const auto segments = RandomSegments(
      static_cast<size_t>(state.range(1)), 2);
  auto index = MakeSegmentIndex(strategy, MicroGrid());
  (void)index->Build(segments);
  Rng rng(3);
  SearchOptions options;
  options.k = 8;
  SearchContext ctx;
  for (auto _ : state) {
    const Point q{rng.Uniform(0, kRegion), rng.Uniform(0, kRegion)};
    benchmark::DoNotOptimize(index->KNearest(q, options, &ctx));
  }
  state.SetLabel(std::string(SearchStrategyName(strategy)));
}

void BM_IndexKnnTrajectories(benchmark::State& state) {
  const auto strategy = StrategyOf(static_cast<int>(state.range(0)));
  const auto segments = RandomSegments(
      static_cast<size_t>(state.range(1)), 4);
  auto index = MakeSegmentIndex(strategy, MicroGrid());
  for (const auto& e : segments) (void)index->Insert(e);
  Rng rng(5);
  SearchOptions options;
  options.k = 8;
  options.group_by = GroupBy::kTrajectory;
  for (auto _ : state) {
    const Point q{rng.Uniform(0, kRegion), rng.Uniform(0, kRegion)};
    benchmark::DoNotOptimize(index->KNearest(q, options));
  }
  state.SetLabel(std::string(SearchStrategyName(strategy)));
}

// Bulk Build vs one-at-a-time Insert: the IntraTrajectoryModifier::Apply
// pattern (a throwaway per-trajectory index built in one shot).
void BM_IndexBulkBuild(benchmark::State& state) {
  const auto strategy = StrategyOf(static_cast<int>(state.range(0)));
  const auto segments = RandomSegments(
      static_cast<size_t>(state.range(1)), 1);
  for (auto _ : state) {
    auto index = MakeSegmentIndex(strategy, MicroGrid());
    benchmark::DoNotOptimize(index->Build(segments));
    benchmark::DoNotOptimize(index->size());
  }
  state.SetLabel(std::string(SearchStrategyName(strategy)));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(segments.size()));
}

void BM_IndexUpdate(benchmark::State& state) {
  const auto strategy = StrategyOf(static_cast<int>(state.range(0)));
  const auto segments = RandomSegments(20000, 6);
  auto index = MakeSegmentIndex(strategy, MicroGrid());
  for (const auto& e : segments) (void)index->Insert(e);
  Rng rng(7);
  SegmentHandle next = segments.size();
  for (auto _ : state) {
    // Remove a random live segment and insert a fresh one (the
    // ModifyAndUpdate pattern of Algorithm 3).
    const SegmentHandle victim =
        rng.UniformInt(uint64_t{segments.size()});
    state.PauseTiming();
    const bool removable = victim < segments.size();
    state.ResumeTiming();
    if (removable) {
      (void)index->Remove(segments[victim].handle);
      SegmentEntry e = segments[victim];
      e.handle = next++;
      (void)index->Insert(e);
      // Keep handle bookkeeping simple: re-register under the old handle.
      (void)index->Remove(e.handle);
      e.handle = segments[victim].handle;
      (void)index->Insert(e);
    }
  }
  state.SetLabel(std::string(SearchStrategyName(strategy)));
}

// Batched SoA sweep vs scalar reference on HG+, warm context. range(0)
// selects the kernel; the dist_evals_per_query counters of the two
// variants must be EQUAL (bit-identity contract) — asserted in CI.
void BM_IndexKnnBatched(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto segments = RandomSegments(
      static_cast<size_t>(state.range(1)), 2);
  auto index = MakeSegmentIndex(SearchStrategy::kBottomUpDown, MicroGrid());
  (void)index->Build(segments);
  Rng rng(3);
  SearchOptions options;
  options.k = 8;
  options.use_batched_kernel = batched;
  SearchContext ctx;
  const uint64_t evals_before = index->distance_evaluations();
  for (auto _ : state) {
    const Point q{rng.Uniform(0, kRegion), rng.Uniform(0, kRegion)};
    benchmark::DoNotOptimize(index->KNearest(q, options, &ctx));
  }
  state.SetLabel(batched ? "HG+/batched" : "HG+/scalar");
  state.counters["dist_evals_per_query"] = benchmark::Counter(
      static_cast<double>(index->distance_evaluations() - evals_before) /
      static_cast<double>(state.iterations()));
}

// Reader scaling: N threads query ONE shared 100k-segment HG+ index
// concurrently, each through its own SearchContext (the documented
// contract). Aggregate items/s across 1/2/4/8 readers is the scaling
// curve; on a multi-core host 4 readers should deliver >= 3x the
// 1-reader aggregate.
void BM_IndexKnnSharedReaders(benchmark::State& state) {
  static const SegmentIndex* shared = [] {
    auto index =
        MakeSegmentIndex(SearchStrategy::kBottomUpDown, MicroGrid());
    const auto segments = RandomSegments(100000, 2);
    (void)index->Build(segments);
    return index.release();
  }();
  Rng rng(300 + static_cast<uint64_t>(state.thread_index()));
  SearchOptions options;
  options.k = 8;
  SearchContext ctx;
  for (auto _ : state) {
    const Point q{rng.Uniform(0, kRegion), rng.Uniform(0, kRegion)};
    benchmark::DoNotOptimize(shared->KNearest(q, options, &ctx));
  }
  state.SetLabel("HG+/shared");
  state.SetItemsProcessed(state.iterations());
  // kAvgThreads: gbench sums plain counters across threads; the whole
  // point of this variant is that ONE build serves every reader.
  state.counters["index_builds"] =
      benchmark::Counter(1.0, benchmark::Counter::kAvgThreads);
}

// The A/B baseline: every reader builds its own private copy of the same
// index (the pre-shared-index world: one rebuild per worker). The build
// happens per thread before the timed loop; query throughput should match
// the shared variant — concurrent reads of one index cost nothing — while
// index_builds counts the duplicated build work.
void BM_IndexKnnPrivateReaders(benchmark::State& state) {
  const auto segments = RandomSegments(100000, 2);
  auto index = MakeSegmentIndex(SearchStrategy::kBottomUpDown, MicroGrid());
  (void)index->Build(segments);
  Rng rng(300 + static_cast<uint64_t>(state.thread_index()));
  SearchOptions options;
  options.k = 8;
  SearchContext ctx;
  for (auto _ : state) {
    const Point q{rng.Uniform(0, kRegion), rng.Uniform(0, kRegion)};
    benchmark::DoNotOptimize(index->KNearest(q, options, &ctx));
  }
  state.SetLabel("HG+/private");
  state.SetItemsProcessed(state.iterations());
  state.counters["index_builds"] = benchmark::Counter(
      static_cast<double>(state.threads()), benchmark::Counter::kAvgThreads);
}

void StrategySizes(benchmark::internal::Benchmark* b) {
  for (int strategy = 0; strategy < 5; ++strategy) {
    for (const int64_t size : {20000, 100000}) {
      b->Args({strategy, size});
    }
  }
}

BENCHMARK(BM_IndexBuild)->Apply([](benchmark::internal::Benchmark* b) {
  for (int strategy = 0; strategy < 5; ++strategy) b->Args({strategy, 20000});
})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexKnnSegments)->Apply(StrategySizes)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexKnnSegmentsCtx)->Apply(StrategySizes)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexKnnTrajectories)->Apply(StrategySizes)
    ->Unit(benchmark::kMicrosecond);
// Iterations are pinned so the batched and scalar variants replay the
// EXACT same query stream: their dist_evals_per_query counters must then
// match to the last digit (asserted in CI).
BENCHMARK(BM_IndexKnnBatched)->Apply([](benchmark::internal::Benchmark* b) {
  for (const int64_t batched : {1, 0}) {
    for (const int64_t size : {20000, 100000}) b->Args({batched, size});
  }
})->Iterations(3000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexKnnSharedReaders)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_IndexKnnPrivateReaders)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_IndexBulkBuild)->Apply([](benchmark::internal::Benchmark* b) {
  for (int strategy = 0; strategy < 5; ++strategy) b->Args({strategy, 20000});
})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexUpdate)->Apply([](benchmark::internal::Benchmark* b) {
  for (int strategy = 0; strategy < 5; ++strategy) b->Args({strategy});
})->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace frt

BENCHMARK_MAIN();
