// Shared plumbing for the paper-reproduction benches: scaled workload
// construction, method factories, metric evaluation, and table printing.
//
// Scale control:
//   FRT_SCALE=full  -> paper-sized |D| (1000 for Table II / Fig. 4, up to
//                      10000 for Fig. 5). Expect long runtimes.
//   (default)       -> laptop scale (|D| in the low hundreds); shapes are
//                      preserved, absolute numbers shrink.
//   FRT_SEED=<n>    -> master seed (default 42).

#ifndef FRT_BENCH_BENCH_COMMON_H_
#define FRT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attack/linker.h"
#include "attack/recovery_attack.h"
#include "common/stopwatch.h"
#include "baselines/adatrace.h"
#include "baselines/dpt.h"
#include "baselines/glove.h"
#include "baselines/identity.h"
#include "baselines/signature_closure.h"
#include "baselines/w4m.h"
#include "core/pipeline.h"
#include "metrics/utility.h"
#include "synth/workload.h"

namespace frt::bench {

inline bool FullScale() {
  const char* scale = std::getenv("FRT_SCALE");
  return scale != nullptr && std::string(scale) == "full";
}

inline uint64_t MasterSeed() {
  const char* seed = std::getenv("FRT_SEED");
  return seed != nullptr ? std::strtoull(seed, nullptr, 10) : 42ULL;
}

/// Builds the T-Drive-substitute workload at the requested size.
inline Workload BuildWorkload(int num_taxis, int target_points,
                              uint64_t seed) {
  WorkloadConfig wcfg;
  wcfg.num_taxis = num_taxis;
  wcfg.target_points = target_points;
  RoadGenConfig rcfg;  // defaults: 36x36 intersections, ~550 m spacing
  auto w = GenerateTaxiWorkload(wcfg, rcfg, seed);
  if (!w.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 w.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*w);
}

/// A named anonymization method plus evaluation directives.
struct Method {
  std::unique_ptr<Anonymizer> anonymizer;
  bool has_timestamps = true;  ///< false: print '-' for LAt / LAst
  bool record_level = true;    ///< false: skip the recovery experiment
};

/// The full Table II method roster (paper order), parameterized by the
/// paper's settings: m = 10, k = 5, l = 3, t = 0.1, eps = 1.0.
inline std::vector<Method> TableTwoMethods(const RoadNetwork* network) {
  std::vector<Method> methods;
  auto add = [&](Anonymizer* a, bool timestamps, bool record) {
    methods.push_back(
        Method{std::unique_ptr<Anonymizer>(a), timestamps, record});
  };
  SignatureClosureConfig sc;
  sc.m = 10;
  add(new SignatureClosure(sc), true, true);
  for (const double alpha : {0.1, 0.5, 1.0, 3.0, 5.0}) {
    SignatureClosureConfig rsc;
    rsc.m = 10;
    rsc.radius = alpha * 1000.0;
    add(new SignatureClosure(rsc), true, true);
  }
  W4mConfig w4m;
  w4m.k = 5;
  add(new W4m(w4m), true, true);
  GloveConfig glove;
  glove.k = 5;
  add(new Glove(glove), true, true);
  GloveConfig klt = glove;
  klt.semantic = true;
  klt.l = 3;
  klt.t = 0.1;
  add(new Glove(klt, network), true, true);
  DptConfig dpt;
  dpt.epsilon = 1.0;
  add(new Dpt(dpt), false, false);
  AdaTraceConfig ada;
  ada.epsilon = 1.0;
  add(new AdaTrace(ada), false, false);
  {
    FrequencyRandomizerConfig cfg;
    cfg.m = 10;
    cfg.epsilon_global = 1.0;
    cfg.epsilon_local = 0.0;
    add(new FrequencyRandomizer(cfg), true, true);  // PureG
  }
  {
    FrequencyRandomizerConfig cfg;
    cfg.m = 10;
    cfg.epsilon_global = 0.0;
    cfg.epsilon_local = 1.0;
    add(new FrequencyRandomizer(cfg), true, true);  // PureL
  }
  {
    FrequencyRandomizerConfig cfg;
    cfg.m = 10;
    cfg.epsilon_global = 0.5;
    cfg.epsilon_local = 0.5;
    add(new FrequencyRandomizer(cfg), true, true);  // GL
  }
  return methods;
}

/// One evaluated row of Table II.
struct EvalRow {
  std::string name;
  double la_s = 0.0, la_t = 0.0, la_st = 0.0, la_sq = 0.0, mi = 0.0;
  double inf = 0.0, de = 0.0, te = 0.0, ffp = 0.0;
  RecoveryScores recovery;
  bool has_timestamps = true;
  bool record_level = true;
  double anonymize_seconds = 0.0;
};

/// Runs one method through the full Table II evaluation.
inline EvalRow EvaluateMethod(Method& method, const Workload& workload,
                              const Linker& linker,
                              const UtilityEvaluator& utility,
                              uint64_t seed) {
  EvalRow row;
  row.name = method.anonymizer->name();
  row.has_timestamps = method.has_timestamps;
  row.record_level = method.record_level;
  Rng rng(seed);
  Stopwatch watch;
  auto out = method.anonymizer->Anonymize(workload.dataset, rng);
  row.anonymize_seconds = watch.ElapsedSeconds();
  if (!out.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", row.name.c_str(),
                 out.status().ToString().c_str());
    return row;
  }
  row.la_s = linker.LinkingAccuracy(*out, SignatureType::kSpatial);
  row.la_sq = linker.LinkingAccuracy(*out, SignatureType::kSequential);
  if (method.has_timestamps) {
    row.la_t = linker.LinkingAccuracy(*out, SignatureType::kTemporal);
    row.la_st =
        linker.LinkingAccuracy(*out, SignatureType::kSpatioTemporal);
  }
  const UtilityScores u = utility.EvaluateAll(workload.dataset, *out);
  row.mi = u.mi;
  row.inf = u.inf;
  row.de = u.de;
  row.te = u.te;
  row.ffp = u.ffp;
  if (method.record_level) {
    row.recovery = EvaluateRecovery(workload, *out);
  }
  return row;
}

/// Prints a metric line across methods ('-' for suppressed cells).
inline void PrintMetricRow(const char* label,
                           const std::vector<EvalRow>& rows,
                           double (*getter)(const EvalRow&),
                           bool needs_timestamps, bool needs_record) {
  std::printf("%-10s", label);
  for (const EvalRow& row : rows) {
    const bool suppressed = (needs_timestamps && !row.has_timestamps) ||
                            (needs_record && !row.record_level);
    if (suppressed) {
      std::printf(" %8s", "-");
    } else {
      std::printf(" %8.3f", getter(row));
    }
  }
  std::printf("\n");
}

inline void PrintHeader(const std::vector<EvalRow>& rows) {
  std::printf("%-10s", "Metric");
  for (const EvalRow& row : rows) std::printf(" %8s", row.name.c_str());
  std::printf("\n");
}

}  // namespace frt::bench

#endif  // FRT_BENCH_BENCH_COMMON_H_
