// Reproduces paper Fig. 4 (a-h): the impact of the privacy budget eps on
// PureG / PureL / GL (|D| = 1000 in the paper; scaled default here).
//
// Panels: (a) LAs, (b) INF, (c) DE, (d) TE, (e) FFP, (f) route-based
// F-score, (g) route-based RMF, (h) point-based Accuracy — each as a series
// over eps in [0.1, 10]. GL always splits the budget evenly
// (eps_G = eps_L = eps / 2), matching §V-B4.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace frt::bench {
namespace {

struct SeriesPoint {
  double epsilon;
  double la_s, inf, de, te, ffp, f_score, rmf, accuracy;
};

int Run() {
  const bool full = FullScale();
  const uint64_t seed = MasterSeed();
  const int num_taxis = full ? 1000 : 160;
  const int target_points = full ? 1813 : 200;
  const std::vector<double> epsilons = {0.1, 0.5, 1.0, 2.0, 5.0, 10.0};

  std::printf("=== Fig. 4 reproduction: impact of eps (|D| = %d) ===\n\n",
              num_taxis);
  Stopwatch total;
  Workload workload = BuildWorkload(num_taxis, target_points, seed);
  Linker linker(workload.dataset.Bounds());
  linker.Train(workload.dataset);
  UtilityEvaluator utility(workload.dataset.Bounds());

  const char* variants[] = {"PureG", "PureL", "GL"};
  std::vector<std::vector<SeriesPoint>> series(3);

  for (int v = 0; v < 3; ++v) {
    for (const double eps : epsilons) {
      FrequencyRandomizerConfig cfg;
      cfg.m = 10;
      switch (v) {
        case 0:
          cfg.epsilon_global = eps;
          cfg.epsilon_local = 0.0;
          break;
        case 1:
          cfg.epsilon_global = 0.0;
          cfg.epsilon_local = eps;
          break;
        default:
          cfg.epsilon_global = eps / 2.0;
          cfg.epsilon_local = eps / 2.0;
          break;
      }
      FrequencyRandomizer randomizer(cfg);
      Rng rng(seed);
      auto out = randomizer.Anonymize(workload.dataset, rng);
      if (!out.ok()) {
        std::fprintf(stderr, "%s eps=%.1f failed: %s\n", variants[v], eps,
                     out.status().ToString().c_str());
        continue;
      }
      SeriesPoint p{};
      p.epsilon = eps;
      p.la_s = linker.LinkingAccuracy(*out, SignatureType::kSpatial);
      const UtilityScores u = utility.EvaluateAll(workload.dataset, *out);
      p.inf = u.inf;
      p.de = u.de;
      p.te = u.te;
      p.ffp = u.ffp;
      const RecoveryScores rec = EvaluateRecovery(workload, *out);
      p.f_score = rec.f_score;
      p.rmf = rec.rmf;
      p.accuracy = rec.accuracy;
      series[v].push_back(p);
      std::printf("  %s eps=%-4g done (%.1fs)\n", variants[v], eps,
                  total.ElapsedSeconds());
    }
  }
  std::printf("\n");

  auto panel = [&](const char* title,
                   double (*get)(const SeriesPoint&)) {
    std::printf("%s\n", title);
    std::printf("  %-8s", "eps");
    for (const double eps : epsilons) std::printf(" %7.2f", eps);
    std::printf("\n");
    for (int v = 0; v < 3; ++v) {
      std::printf("  %-8s", variants[v]);
      for (const SeriesPoint& p : series[v]) std::printf(" %7.3f", get(p));
      std::printf("\n");
    }
    std::printf("\n");
  };

  panel("(a) LAs vs eps", [](const SeriesPoint& p) { return p.la_s; });
  panel("(b) INF vs eps", [](const SeriesPoint& p) { return p.inf; });
  panel("(c) DE vs eps", [](const SeriesPoint& p) { return p.de; });
  panel("(d) TE vs eps", [](const SeriesPoint& p) { return p.te; });
  panel("(e) FFP vs eps", [](const SeriesPoint& p) { return p.ffp; });
  panel("(f) Route-based F-score vs eps",
        [](const SeriesPoint& p) { return p.f_score; });
  panel("(g) Route-based RMF vs eps",
        [](const SeriesPoint& p) { return p.rmf; });
  panel("(h) Point-based Accuracy vs eps",
        [](const SeriesPoint& p) { return p.accuracy; });

  std::printf("total wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace frt::bench

int main() { return frt::bench::Run(); }
