// bench_batch — BatchRunner scaling study: wall-clock of the GL pipeline at
// increasing shard counts over one synthetic workload, plus epsilon
// accounting checks between the sharded and single-shard runs.
//
// The pipeline is superlinear in |D| (the candidate set and the kNN
// modification both grow with the dataset), so sharding wins wall-clock even
// on a single core; with threads it also parallelizes across shards.
//
//   FRT_SCALE=full  -> |D| = 50,000 trajectories (production-scale; the
//                      1-shard baseline alone can take hours on a laptop).
//   (default)       -> |D| = 2,000 (laptop scale; shapes are preserved).
//   FRT_SEED=<n>    -> master seed (default 42).
//   FRT_SHARDS=a,b  -> override the shard-count sweep (default 1,2,4,8,16).
//   FRT_THREADS=<n> -> worker threads (default: hardware concurrency).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "runtime/batch_runner.h"

namespace {

std::vector<int> ShardSweep() {
  const char* env = std::getenv("FRT_SHARDS");
  if (env == nullptr) return {1, 2, 4, 8, 16};
  std::vector<int> sweep;
  std::string token;
  for (const char* c = env;; ++c) {
    if (*c == ',' || *c == '\0') {
      if (!token.empty()) sweep.push_back(std::atoi(token.c_str()));
      token.clear();
      if (*c == '\0') break;
    } else {
      token.push_back(*c);
    }
  }
  return sweep.empty() ? std::vector<int>{1, 2, 4, 8, 16} : sweep;
}

unsigned Threads() {
  const char* env = std::getenv("FRT_THREADS");
  return env != nullptr
             ? static_cast<unsigned>(std::strtoul(env, nullptr, 10))
             : 0;
}

}  // namespace

int main() {
  const bool full = frt::bench::FullScale();
  const int num_taxis = full ? 50000 : 2000;
  const int target_points = 60;
  const uint64_t seed = frt::bench::MasterSeed();
  const unsigned threads = Threads();

  std::printf("bench_batch: |D|=%d, %d pts/traj target, seed=%llu, "
              "threads=%u (hw=%u)\n",
              num_taxis, target_points,
              static_cast<unsigned long long>(seed), threads,
              std::thread::hardware_concurrency());

  frt::Stopwatch gen_watch;
  frt::Workload workload =
      frt::bench::BuildWorkload(num_taxis, target_points, seed);
  std::printf("workload: %zu trajectories, %zu points (%.1fs)\n",
              workload.dataset.size(), workload.dataset.TotalPoints(),
              gen_watch.ElapsedSeconds());

  frt::FrequencyRandomizerConfig pipeline;
  pipeline.m = 10;
  pipeline.epsilon_global = 0.5;
  pipeline.epsilon_local = 0.5;

  std::printf("\n%8s %12s %10s %8s %12s %12s %12s\n", "shards", "wall_s",
              "speedup", "eps", "sum|P|", "ins", "del");

  double baseline_seconds = 0.0;  // first sweep entry; rows compare to it
  for (const int shards : ShardSweep()) {
    frt::BatchRunnerConfig config;
    config.pipeline = pipeline;
    config.shards = shards;
    config.threads = threads;
    frt::BatchRunner runner(config);
    frt::Rng rng(seed);
    auto published = runner.Anonymize(workload.dataset, rng);
    if (!published.ok()) {
      std::fprintf(stderr, "shards=%d failed: %s\n", shards,
                   published.status().ToString().c_str());
      return 1;
    }
    const frt::BatchReport& report = runner.report();
    if (baseline_seconds == 0.0) baseline_seconds = report.wall_seconds;
    const double speedup = report.wall_seconds > 0.0
                               ? baseline_seconds / report.wall_seconds
                               : 0.0;
    std::printf("%8d %12.2f %9.2fx %8.2f %12zu %12zu %12zu\n",
                report.shards_run, report.wall_seconds, speedup,
                report.epsilon_spent, report.combined.candidate_set_size,
                report.combined.local.edits.insertions +
                    report.combined.global.edits.insertions,
                report.combined.local.edits.deletions +
                    report.combined.global.edits.deletions);
  }
  std::printf("\nepsilon is identical at every shard count: each object "
              "lives in one shard, so parallel composition yields the "
              "single-shot guarantee.\n");
  return 0;
}
