// bench_stream — streaming runtime study in two parts.
//
// Part 1, dispatch A/B: static stride assignment (ParallelFor) vs the
// work-stealing pool on a skewed-shard workload. The skew pattern is the
// stride-resonance pathology work stealing exists to fix: one heavy shard
// per fixed-size group (think "the downtown partition of every window"),
// so with W workers and a heavy period sharing a divisor with W, static
// dispatch piles several heavy shards onto one worker while the rest idle.
// Work stealing re-balances at runtime and should win >= 1.3x. Shard
// durations are emulated with timed sleeps, which isolates the scheduling
// policy and makes the A/B machine-independent (a CPU-spin variant would
// additionally need >= W free cores to show the same gap).
//
// Part 2, streaming throughput/latency: the full ingest -> window ->
// anonymize -> emit service over an in-memory CSV feed, reporting
// windows/s, trajectories/s, and per-window latency for both dispatch
// policies.
//
// Part 3, budget-accountant A/B: wholesale ledger vs per-object ledgers on
// a feed whose object-ids recycle. With an identical feed, budget, and
// seed, the wholesale ledger bills every window against one sum and runs
// dry after budget/(eps_G+eps_L) windows; the per-object accountant caps
// each object's own cumulative spend, so windows full of objects that
// have not yet spent their budget keep publishing — strictly more windows
// under the identical per-object end-to-end guarantee.
//
//   FRT_SCALE=full  -> 10,000-trajectory feed (default 2,000).
//   FRT_SEED=<n>    -> master seed (default 42).
//   FRT_THREADS=<n> -> worker threads for all parts (default 6).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "runtime/work_stealing_pool.h"
#include "stream/ingest.h"
#include "stream/stream_runner.h"
#include "traj/io.h"

namespace {

// Workers for the part-1 scheduler study. Default 6: a worker count with a
// common factor with the heavy-shard period (8) is the realistic bad case
// for striding, and sleep-emulated shards do not need a core each.
unsigned StudyThreads() {
  const char* env = std::getenv("FRT_THREADS");
  if (env != nullptr) {
    const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (n > 0) return n;
  }
  return 6;
}

// Emulates a shard that takes `ms` of wall time.
void EmulateShard(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long long>(ms * 1e3)));
}

double MedianSeconds(std::vector<double>& runs) {
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

// Part-3 feed: `arrivals` trajectories whose ids recycle modulo
// `distinct_ids`, so every object reappears arrivals/distinct_ids times
// across the stream — the reappearance pattern that separates wholesale
// from per-object accounting. Ids stay unique within any window of up to
// `distinct_ids` arrivals.
std::string RecyclingFeedCsv(int arrivals, int distinct_ids) {
  std::ostringstream out;
  out << "# traj_id,x,y,t\n";
  for (int i = 0; i < arrivals; ++i) {
    const int id = i % distinct_ids;
    const int points = 24 + (i * 7) % 13;
    double x = 200.0 + (i * 137) % 1700;
    double y = 300.0 + (i * 251) % 1500;
    int64_t t = 1000 + i;
    for (int j = 0; j < points; ++j) {
      out << id << ',' << x << ',' << y << ',' << t << '\n';
      x += 35.0 + (j * 11) % 20;
      y += 25.0 + ((i + j) * 13) % 30;
      t += 60;
    }
  }
  return out.str();
}

}  // namespace

int main() {
  const bool full = frt::bench::FullScale();
  const uint64_t seed = frt::bench::MasterSeed();
  const unsigned threads = StudyThreads();

  // ---------------------------------------------------------------- Part 1
  // 64 shard-sized tasks, one heavy shard per group of 8. Durations are
  // fixed, so static assignment (task i -> worker i % W) is reproducible.
  const size_t kTasks = 64;
  const double kHeavyMs = full ? 40.0 : 12.0;
  const double kLightMs = full ? 2.0 : 0.6;
  std::vector<double> duration_ms(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    duration_ms[i] = (i % 8 == 0) ? kHeavyMs : kLightMs;
  }
  const auto task = [&](size_t i) { EmulateShard(duration_ms[i]); };

  std::printf("bench_stream part 1: dispatch A/B, %zu emulated shards "
              "(heavy %.1f ms every 8th, light %.1f ms), %u workers\n",
              kTasks, kHeavyMs, kLightMs, threads);

  const int kReps = 5;
  std::vector<double> static_runs, steal_runs;
  frt::WorkStealingPool pool(threads);
  for (int rep = 0; rep < kReps; ++rep) {
    frt::Stopwatch w1;
    frt::ParallelFor(kTasks, task, threads);
    static_runs.push_back(w1.ElapsedSeconds());
    frt::Stopwatch w2;
    pool.Run(kTasks, task);
    steal_runs.push_back(w2.ElapsedSeconds());
  }
  const double static_s = MedianSeconds(static_runs);
  const double steal_s = MedianSeconds(steal_runs);
  const double speedup = steal_s > 0.0 ? static_s / steal_s : 0.0;
  std::printf("  static dispatch (ParallelFor): %7.3f s median\n", static_s);
  std::printf("  work stealing   (pool)       : %7.3f s median\n", steal_s);
  std::printf("  work-stealing speedup on skewed shards: %.2fx %s\n\n",
              speedup, speedup >= 1.3 ? "(>= 1.3x target met)"
                                      : "(below 1.3x target)");

  // ---------------------------------------------------------------- Part 2
  const int num_taxis = full ? 10000 : 2000;
  const size_t window = full ? 1000 : 250;
  std::printf("bench_stream part 2: streaming service, |D|=%d, window=%zu, "
              "shards=16, %u threads\n",
              num_taxis, window, threads);

  frt::Stopwatch gen_watch;
  frt::Workload workload = frt::bench::BuildWorkload(num_taxis, 40, seed);
  std::ostringstream csv;
  if (auto st = frt::WriteDatasetCsv(workload.dataset, csv); !st.ok()) {
    std::fprintf(stderr, "serialize: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("feed: %zu trajectories, %zu points, %.1f MB CSV (%.1fs)\n",
              workload.dataset.size(), workload.dataset.TotalPoints(),
              static_cast<double>(csv.str().size()) / 1e6,
              gen_watch.ElapsedSeconds());

  std::printf("\n%10s %10s %10s %12s %14s %16s\n", "dispatch", "wall_s",
              "windows", "windows/s", "trajs/s",
              "win_lat med/max s");
  for (const frt::ShardDispatch dispatch :
       {frt::ShardDispatch::kStatic, frt::ShardDispatch::kWorkStealing}) {
    std::istringstream in(csv.str());
    frt::TrajectoryReader reader(in);
    frt::StreamRunnerConfig config;
    config.window_size = window;
    config.batch.shards = 16;
    config.batch.threads = threads;
    config.batch.dispatch = dispatch;
    config.batch.pipeline.m = 5;
    frt::StreamRunner runner(config);
    frt::Rng rng(seed);
    std::vector<double> latencies;
    auto sink = [&](const frt::Dataset&,
                    const frt::WindowReport& w) -> frt::Status {
      latencies.push_back(w.batch.wall_seconds);
      return frt::Status::OK();
    };
    if (auto st = runner.Run(reader, sink, rng); !st.ok()) {
      std::fprintf(stderr, "stream run failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const frt::StreamReport& report = runner.report();
    const double med = latencies.empty() ? 0.0 : MedianSeconds(latencies);
    const double worst =
        latencies.empty() ? 0.0
                          : *std::max_element(latencies.begin(),
                                              latencies.end());
    std::printf("%10s %10.2f %10zu %12.2f %14.0f %8.3f/%.3f\n",
                dispatch == frt::ShardDispatch::kStatic ? "static" : "steal",
                report.wall_seconds, report.windows_published,
                report.wall_seconds > 0.0
                    ? static_cast<double>(report.windows_published) /
                          report.wall_seconds
                    : 0.0,
                report.wall_seconds > 0.0
                    ? static_cast<double>(report.trajectories_published) /
                          report.wall_seconds
                    : 0.0,
                med, worst);
  }
  std::printf("\nwindows publish incrementally under a shared "
              "work-stealing pool; the cross-window ledger composes "
              "sequentially (here unbounded, so nothing was refused).\n");

  // ---------------------------------------------------------------- Part 3
  const int ab_arrivals = full ? 8000 : 2000;
  const int ab_distinct = full ? 2000 : 500;
  const size_t ab_window = full ? 1000 : 250;
  const double ab_budget = 6.0;  // per-window eps is 1.0 (0.5 + 0.5)
  const size_t ab_total_windows =
      static_cast<size_t>(ab_arrivals) / ab_window;
  std::printf("\nbench_stream part 3: accountant A/B, %d arrivals over %d "
              "distinct object-ids (each reappears %dx), window=%zu, "
              "budget=%.1f, eps 1.0/window\n",
              ab_arrivals, ab_distinct, ab_arrivals / ab_distinct, ab_window,
              ab_budget);
  const std::string ab_csv = RecyclingFeedCsv(ab_arrivals, ab_distinct);

  // guarantee_eps is each mode's end-to-end bound: the ledger sum under
  // wholesale, the max per-object cumulative spend under per-object.
  std::printf("%12s %10s %10s %12s %14s %12s\n", "accounting", "windows",
              "refused", "trajs_out", "guarantee_eps", "ledger_eps");
  size_t wholesale_published = 0, per_object_published = 0;
  for (const frt::BudgetAccounting accounting :
       {frt::BudgetAccounting::kWholesale,
        frt::BudgetAccounting::kPerObject}) {
    std::istringstream in(ab_csv);
    frt::TrajectoryReader reader(in);
    frt::StreamRunnerConfig config;
    config.window_size = ab_window;
    config.accounting = accounting;
    if (accounting == frt::BudgetAccounting::kWholesale) {
      config.total_budget = ab_budget;
    } else {
      config.per_object_budget = ab_budget;
    }
    config.batch.shards = 4;
    config.batch.threads = threads;
    config.batch.pipeline.m = 3;
    frt::StreamRunner runner(config);
    frt::Rng rng(seed);
    auto sink = [](const frt::Dataset&,
                   const frt::WindowReport&) -> frt::Status {
      return frt::Status::OK();
    };
    if (auto st = runner.Run(reader, sink, rng); !st.ok()) {
      std::fprintf(stderr, "A/B run failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const frt::StreamReport& report = runner.report();
    const bool per_object = accounting == frt::BudgetAccounting::kPerObject;
    (per_object ? per_object_published : wholesale_published) =
        report.windows_published;
    std::printf("%12s %10zu %10zu %12zu %14.2f %12.2f\n",
                per_object ? "per-object" : "wholesale",
                report.windows_published, report.windows_refused,
                report.trajectories_published,
                per_object ? runner.object_accountant().max_spent()
                           : report.epsilon_spent,
                report.epsilon_wholesale_equivalent);
  }
  std::printf("\nper-object accounting published %zu of %zu windows vs "
              "%zu wholesale (%s) — same feed, same budget, same seed, "
              "same per-object guarantee.\n",
              per_object_published, ab_total_windows, wholesale_published,
              per_object_published > wholesale_published
                  ? "strictly more"
                  : "NOT more — regression");
  return 0;
}
