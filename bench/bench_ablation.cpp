// Ablation studies for the design choices the paper argues for in prose:
//
//   (A) Stage-2 of Algorithm 2 on/off — the paper: "purely conducting
//       Stage-1 without the help of Stage-2 would dramatically influence
//       the cardinality of the resulting trajectory".
//   (B) Non-zero-mean vs zero-mean Laplace in Stage-1 (Theorem 2) — the
//       shifted mean is what actually erases signature points.
//   (C) Signature size m — how much of the privacy/utility trade-off the
//       single knob m controls.

#include <cstdio>

#include "bench_common.h"
#include "core/local_mechanism.h"
#include "core/signature.h"

namespace frt::bench {
namespace {

struct AblationResult {
  double points_ratio = 0.0;  // |anonymized points| / |original points|
  double signature_residue = 0.0;  // surviving signature PF fraction
  double la_s = 0.0;
  double inf = 0.0;
};

AblationResult RunLocal(const Workload& workload, const Linker& linker,
                        const UtilityEvaluator& utility,
                        const LocalMechanismConfig& cfg, int m,
                        uint64_t seed) {
  BBox region = workload.dataset.Bounds();
  const double pad = 0.01 * std::max(region.Width(), region.Height());
  region.min_x -= pad;
  region.min_y -= pad;
  region.max_x += pad;
  region.max_y += pad;
  Quantizer quantizer(region, 11);
  quantizer.RegisterDataset(workload.dataset);
  SignatureExtractor extractor(&quantizer, m);
  auto sig = extractor.Extract(workload.dataset);
  if (!sig.ok()) std::exit(1);

  LocalMechanism mechanism(&quantizer, cfg);
  Rng rng(seed);
  LocalReport report;
  auto out =
      mechanism.Apply(workload.dataset, *sig, rng, nullptr, &report);
  if (!out.ok()) std::exit(1);

  AblationResult r;
  r.points_ratio = static_cast<double>(out->TotalPoints()) /
                   static_cast<double>(workload.dataset.TotalPoints());
  int64_t before = 0;
  int64_t after = 0;
  for (size_t i = 0; i < workload.dataset.size(); ++i) {
    const PointFrequency pf_after =
        ComputePointFrequency((*out)[i], quantizer);
    for (const auto& wl : sig->per_traj[i]) {
      before += wl.pf;
      auto it = pf_after.find(wl.key);
      after += it == pf_after.end() ? 0 : it->second;
    }
  }
  r.signature_residue =
      before == 0 ? 0.0
                  : static_cast<double>(after) / static_cast<double>(before);
  r.la_s = linker.LinkingAccuracy(*out, SignatureType::kSpatial);
  r.inf = utility.InformationLoss(workload.dataset, *out);
  return r;
}

int Run() {
  const uint64_t seed = MasterSeed();
  const int num_taxis = FullScale() ? 1000 : 160;
  const int target_points = FullScale() ? 1813 : 200;

  std::printf("=== Ablations (|D| = %d, eps_L = 0.5) ===\n\n", num_taxis);
  Workload workload = BuildWorkload(num_taxis, target_points, seed);
  Linker linker(workload.dataset.Bounds());
  linker.Train(workload.dataset);
  UtilityEvaluator utility(workload.dataset.Bounds());

  std::printf("(A) Stage-2 of Algorithm 2\n");
  std::printf("  %-22s %10s %10s %8s %8s\n", "variant", "pts-ratio",
              "sig-resid", "LAs", "INF");
  {
    LocalMechanismConfig cfg;
    cfg.epsilon = 0.5;
    const AblationResult with_s2 =
        RunLocal(workload, linker, utility, cfg, 10, seed);
    cfg.enable_stage2 = false;
    const AblationResult without_s2 =
        RunLocal(workload, linker, utility, cfg, 10, seed);
    std::printf("  %-22s %10.3f %10.3f %8.3f %8.3f\n", "stage-1 + stage-2",
                with_s2.points_ratio, with_s2.signature_residue,
                with_s2.la_s, with_s2.inf);
    std::printf("  %-22s %10.3f %10.3f %8.3f %8.3f\n", "stage-1 only",
                without_s2.points_ratio, without_s2.signature_residue,
                without_s2.la_s, without_s2.inf);
  }

  std::printf("\n(B) Stage-1 noise center (Theorem 2)\n");
  std::printf("  %-22s %10s %10s %8s %8s\n", "variant", "pts-ratio",
              "sig-resid", "LAs", "INF");
  {
    LocalMechanismConfig cfg;
    cfg.epsilon = 0.5;
    const AblationResult shifted =
        RunLocal(workload, linker, utility, cfg, 10, seed);
    cfg.zero_mean_stage1 = true;
    const AblationResult zero =
        RunLocal(workload, linker, utility, cfg, 10, seed);
    std::printf("  %-22s %10.3f %10.3f %8.3f %8.3f\n", "Lap(-f_k, 1/eps)",
                shifted.points_ratio, shifted.signature_residue,
                shifted.la_s, shifted.inf);
    std::printf("  %-22s %10.3f %10.3f %8.3f %8.3f\n", "Lap(0, 1/eps)",
                zero.points_ratio, zero.signature_residue, zero.la_s,
                zero.inf);
  }

  std::printf("\n(C) Signature size m\n");
  std::printf("  %-22s %10s %10s %8s %8s\n", "m", "pts-ratio", "sig-resid",
              "LAs", "INF");
  for (const int m : {2, 5, 10, 20}) {
    LocalMechanismConfig cfg;
    cfg.epsilon = 0.5;
    const AblationResult r =
        RunLocal(workload, linker, utility, cfg, m, seed);
    std::printf("  %-22d %10.3f %10.3f %8.3f %8.3f\n", m, r.points_ratio,
                r.signature_residue, r.la_s, r.inf);
  }
  return 0;
}

}  // namespace
}  // namespace frt::bench

int main() { return frt::bench::Run(); }
