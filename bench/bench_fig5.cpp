// Reproduces paper Fig. 5: efficiency of the kNN search strategies.
//
//   Left panel:  total modification time (seconds, log scale in the paper)
//                vs dataset size for Linear / UG / HGt / HGb / HG+.
//   Right panel: time split between Local (intra-trajectory) and Global
//                (inter-trajectory) modification with HG+.
//
// The timed quantity is exactly the paper's: the trajectory-modification
// phase of the GL pipeline (eps_G = eps_L = 0.5), which is dominated by
// K-nearest trajectory/segment searches. Identical seeds mean every
// strategy performs the same logical edits; only search order differs.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace frt::bench {
namespace {

int Run() {
  const bool full = FullScale();
  const uint64_t seed = MasterSeed();
  const std::vector<int> sizes =
      full ? std::vector<int>{1000, 2000, 4000, 6000, 8000, 10000}
           : std::vector<int>{50, 100, 200, 400, 600, 800};
  const int target_points = full ? 1813 : 150;
  const std::vector<SearchStrategy> strategies = {
      SearchStrategy::kLinear, SearchStrategy::kUniformGrid,
      SearchStrategy::kTopDown, SearchStrategy::kBottomUp,
      SearchStrategy::kBottomUpDown};

  std::printf("=== Fig. 5 reproduction: efficiency (eps_G = eps_L = 0.5) "
              "===\n\n");
  Stopwatch total;

  // time[strategy][size]
  std::vector<std::vector<double>> time(strategies.size());
  std::vector<double> local_time(sizes.size());
  std::vector<double> global_time(sizes.size());

  for (size_t si = 0; si < sizes.size(); ++si) {
    Workload workload = BuildWorkload(sizes[si], target_points, seed);
    for (size_t st = 0; st < strategies.size(); ++st) {
      FrequencyRandomizerConfig cfg;
      cfg.m = 10;
      cfg.epsilon_global = 0.5;
      cfg.epsilon_local = 0.5;
      cfg.strategy = strategies[st];
      FrequencyRandomizer randomizer(cfg);
      Rng rng(seed);
      auto out = randomizer.Anonymize(workload.dataset, rng);
      if (!out.ok()) {
        std::fprintf(stderr, "anonymize failed: %s\n",
                     out.status().ToString().c_str());
        return 1;
      }
      const double seconds = randomizer.report().local_seconds +
                             randomizer.report().global_seconds;
      time[st].push_back(seconds);
      if (strategies[st] == SearchStrategy::kBottomUpDown) {
        local_time[si] = randomizer.report().local_seconds;
        global_time[si] = randomizer.report().global_seconds;
      }
      std::printf("  |D|=%-5d %-6s %8.2fs  (total %.0fs)\n", sizes[si],
                  std::string(SearchStrategyName(strategies[st])).c_str(),
                  seconds, total.ElapsedSeconds());
    }
  }
  std::printf("\n");

  std::printf("Left panel: modification time (s) vs |D|\n");
  std::printf("  %-8s", "|D|");
  for (const int n : sizes) std::printf(" %8d", n);
  std::printf("\n");
  for (size_t st = 0; st < strategies.size(); ++st) {
    std::printf("  %-8s",
                std::string(SearchStrategyName(strategies[st])).c_str());
    for (const double s : time[st]) std::printf(" %8.2f", s);
    std::printf("\n");
  }
  std::printf("\nRight panel: Local vs Global modification time (s), HG+\n");
  std::printf("  %-8s", "|D|");
  for (const int n : sizes) std::printf(" %8d", n);
  std::printf("\n  %-8s", "Local");
  for (const double s : local_time) std::printf(" %8.2f", s);
  std::printf("\n  %-8s", "Global");
  for (const double s : global_time) std::printf(" %8.2f", s);
  std::printf("\n\nspeedup at |D|=%d: Linear/HG+ = %.1fx, UG/HG+ = %.1fx\n",
              sizes.back(),
              time[0].back() / std::max(1e-9, time[4].back()),
              time[1].back() / std::max(1e-9, time[4].back()));
  std::printf("total wall time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace frt::bench

int main() { return frt::bench::Run(); }
