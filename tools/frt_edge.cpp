// frt_edge — edge-side anonymizer of the distributed ingress tier.
//
// Reads local trajectory input, runs the full multi-feed anonymization
// service locally (window assembly, per-feed DP budgets, deterministic
// RNG streams — exactly what frt_serve does), and forwards every
// PUBLISHED window upstream to an frt_serve aggregator as framed binary
// trajectories (net/frame.h):
//
//   frt_serve --listen unix:/tmp/frt.sock --listen-conns 2 --output - &
//   frt_edge --feeds site_a.csv --connect unix:/tmp/frt.sock
//   frt_edge --input b=site_b.csv --connect unix:/tmp/frt.sock
//
// Only anonymized trajectories ever leave the edge — raw input never
// crosses the wire. Doubles travel as IEEE-754 bit patterns, so what the
// aggregator receives is bit-identical to the edge's local output.
// Backpressure is the kernel's: when the aggregator falls behind, its
// reader stops draining the socket and the edge's writes block.
//
//   frt_edge (--feeds FILE|- | --input [NAME=]FILE ...) --connect EP
//       [--hello NAME] [stream/pipeline/durability/observability flags]
//
// The connection opens with a kHello frame carrying --hello NAME (default
// "edge") for the aggregator's diagnostics and closes with a kBye frame;
// a missing kBye tells the aggregator the edge died mid-stream. Each
// forwarded window is wrapped in a "forward" span (category "net") when
// --trace-out is armed.
//
// --inject-corrupt-frame N is a FAULT-INJECTION TEST HOOK: it flips one
// payload byte of the Nth trajectory frame after the CRC was computed, so
// the aggregator sees a CRC mismatch and quarantines this edge's feeds.
// Never use it outside tests.
//
// Exit codes: 0 = every window published and forwarded; 3 = completed but
// at least one feed had a window refused (or object evicted) on budget,
// or was quarantined locally; 1 = runtime error (including a dead
// upstream); 2 = usage error.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.h"
#include "frt.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/admin_server.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "service/dispatcher.h"
#include "stream/ingest.h"
#include "traj/io.h"

namespace {

struct Args {
  std::string feeds;                             // --feeds FILE|-
  std::vector<std::pair<std::string, std::string>> inputs;  // name, path
  std::string hello = "edge";   // --hello NAME
  uint64_t inject_corrupt_frame = 0;  // test hook; 0 = off
  frt::cli::StreamArgs stream;
  frt::cli::PipelineArgs pipeline;
  frt::cli::DurabilityArgs durability;
  frt::cli::ObservabilityArgs obs;
  frt::cli::TransportArgs transport;
};

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s (--feeds FILE|- | --input [NAME=]FILE ...) --connect EP\n"
      "  --feeds FILE|-       interleaved multi-feed CSV "
      "(feed,traj_id,x,y,t)\n"
      "  --input [NAME=]FILE  one dataset CSV per feed (repeatable); feed "
      "id is\n"
      "                       NAME or the file stem\n"
      "  --hello NAME         peer name sent in the connection preamble\n"
      "                       (default 'edge')\n"
      "  --inject-corrupt-frame N\n"
      "                       TEST HOOK: corrupt one payload byte of the "
      "Nth\n"
      "                       trajectory frame after its CRC (default 0 = "
      "off)\n"
      "%s%s%s%s%s",
      prog, frt::cli::TransportUsageText(), frt::cli::DurabilityUsageText(),
      frt::cli::ObservabilityUsageText(), frt::cli::StreamUsageText(),
      frt::cli::PipelineUsageText());
}

std::string FeedNameFromPath(const std::string& path) {
  size_t begin = path.find_last_of("/\\");
  begin = begin == std::string::npos ? 0 : begin + 1;
  size_t end = path.rfind('.');
  if (end == std::string::npos || end <= begin) end = path.size();
  return path.substr(begin, end - begin);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    switch (frt::cli::ParsePipelineFlag(argc, argv, &i, &args->pipeline)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseStreamFlag(argc, argv, &i, &args->stream)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (
        frt::cli::ParseDurabilityFlag(argc, argv, &i, &args->durability)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseObservabilityFlag(argc, argv, &i, &args->obs)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseTransportFlag(argc, argv, &i, &args->transport)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--feeds") == 0) {
      if ((v = next("--feeds")) == nullptr) return false;
      args->feeds = v;
    } else if (std::strcmp(argv[i], "--input") == 0) {
      if ((v = next("--input")) == nullptr) return false;
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq != std::string::npos && eq > 0) {
        args->inputs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      } else {
        args->inputs.emplace_back(FeedNameFromPath(spec), spec);
      }
    } else if (std::strcmp(argv[i], "--hello") == 0) {
      if ((v = next("--hello")) == nullptr) return false;
      args->hello = v;
    } else if (std::strcmp(argv[i], "--inject-corrupt-frame") == 0) {
      if ((v = next("--inject-corrupt-frame")) == nullptr) return false;
      if (!frt::cli::ParseFlagUint64("--inject-corrupt-frame", v,
                                     &args->inject_corrupt_frame)) {
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  if (!args->transport.listen.empty()) {
    std::fprintf(stderr,
                 "frt_edge does not take --listen (use frt_serve as the "
                 "aggregator)\n");
    return false;
  }
  if (args->transport.connect.empty()) {
    std::fprintf(stderr, "--connect EP is required (the aggregator)\n");
    return false;
  }
  if (args->feeds.empty() == args->inputs.empty()) {
    std::fprintf(stderr,
                 "exactly one of --feeds or --input (repeatable) is "
                 "required\n");
    return false;
  }
  std::set<std::string> seen;
  for (const auto& [name, path] : args->inputs) {
    if (name.empty()) {
      std::fprintf(stderr, "empty feed name for --input %s\n", path.c_str());
      return false;
    }
    if (!seen.insert(name).second) {
      std::fprintf(stderr,
                   "duplicate feed name '%s' (from --input %s); use "
                   "NAME=FILE to disambiguate\n",
                   name.c_str(), path.c_str());
      return false;
    }
  }
  return true;
}

/// Streams the interleaved multi-feed CSV (`feed,traj_id,x,y,t`) into the
/// dispatcher — same contiguity contract as frt_serve.
frt::Status IngestMultiFeedCsv(std::istream& in,
                               frt::ServiceDispatcher& service) {
  struct Assembly {
    frt::Trajectory current{0};
    bool has_current = false;
  };
  std::map<std::string, Assembly> assemblies;
  std::vector<std::string> order;
  std::string line;
  size_t lineno = 0;
  bool stopped = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos || comma == 0) {
      return frt::Status::InvalidArgument(
          "line " + std::to_string(lineno) +
          ": expected feed,traj_id,x,y,t");
    }
    const std::string feed = line.substr(0, comma);
    FRT_ASSIGN_OR_RETURN(
        const std::optional<frt::CsvRecord> record,
        frt::ParseCsvRecord(
            std::string_view(line).substr(comma + 1), lineno));
    if (!record.has_value()) continue;
    auto [it, inserted] = assemblies.try_emplace(feed);
    if (inserted) order.push_back(feed);
    Assembly& assembly = it->second;
    if (assembly.has_current && assembly.current.id() != record->id) {
      if (!service.Offer(feed, std::move(assembly.current))) {
        stopped = true;
        break;
      }
      assembly.has_current = false;
    }
    if (!assembly.has_current) {
      assembly.current = frt::Trajectory(record->id);
      assembly.has_current = true;
    }
    assembly.current.Append(record->p, record->t);
  }
  if (!stopped) {
    for (const auto& feed : order) {
      Assembly& assembly = assemblies[feed];
      if (assembly.has_current && !assembly.current.empty()) {
        if (!service.Offer(feed, std::move(assembly.current))) break;
      }
    }
  }
  return frt::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::ios::sync_with_stdio(false);
  // An aggregator vanishing mid-write must surface as an IOError from the
  // sink, never a process-wide SIGPIPE (WriteAll also sends MSG_NOSIGNAL;
  // this covers any other stray write).
  std::signal(SIGPIPE, SIG_IGN);
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  frt::FrequencyRandomizerConfig pipeline_config;
  if (!frt::cli::MakePipelineConfig(args.pipeline, &pipeline_config)) {
    Usage(argv[0]);
    return 2;
  }
  auto upstream_endpoint = frt::net::ParseEndpoint(args.transport.connect);
  if (!upstream_endpoint.ok()) {
    std::fprintf(stderr, "edge: %s\n",
                 upstream_endpoint.status().ToString().c_str());
    Usage(argv[0]);
    return 2;
  }
  // A bad --admin-listen is a usage error, not a mid-run failure.
  std::optional<frt::net::Endpoint> admin_endpoint;
  if (!args.obs.admin_listen.empty()) {
    auto endpoint = frt::net::ParseEndpoint(args.obs.admin_listen);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "edge: %s\n",
                   endpoint.status().ToString().c_str());
      Usage(argv[0]);
      return 2;
    }
    admin_endpoint = *std::move(endpoint);
  }
  frt::ServiceConfig config;
  if (!frt::cli::MakeStreamConfig(args.stream, args.pipeline,
                                  pipeline_config, &config.stream)) {
    Usage(argv[0]);
    return 2;
  }
  config.arrival_queue_capacity = config.stream.queue_capacity;
  config.state_dir = args.durability.state_dir;
  config.checkpoint_interval_ms = args.durability.checkpoint_interval_ms;

  if (!args.obs.trace_out.empty()) {
    frt::obs::TraceRecorder::Options trace_options;
    trace_options.buffer_events =
        static_cast<size_t>(args.obs.trace_buffer_events);
    frt::obs::TraceRecorder::Get().Start(trace_options);
    frt::obs::SetTraceThreadName("main");
  }

  std::unique_ptr<frt::MetricsExporter> metrics;
  if (!args.durability.metrics.empty()) {
    metrics = std::make_unique<frt::MetricsExporter>(
        frt::cli::MakeMetricsOptions(args.durability, args.obs));
    if (auto st = metrics->Start(); !st.ok()) {
      std::fprintf(stderr, "edge: %s\n", st.ToString().c_str());
      return 1;
    }
    config.metrics = metrics.get();
    config.metrics_interval_ms = args.durability.metrics_interval_ms;
  }

  // ---- Upstream connection (written by the dispatcher thread only once
  // the service starts; hello/bye bracket it from this thread while the
  // dispatcher is not running). ----
  auto conn = frt::net::ConnectTo(*upstream_endpoint);
  if (!conn.ok()) {
    std::fprintf(stderr, "edge: cannot reach aggregator: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }
  frt::net::Socket upstream = *std::move(conn);
  {
    std::string hello;
    frt::net::AppendFrame(&hello, frt::net::FrameType::kHello, args.hello);
    if (auto st = frt::net::WriteAll(upstream.fd(), hello.data(),
                                     hello.size());
        !st.ok()) {
      std::fprintf(stderr, "edge: hello failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  // ---- Forwarding sink (called from the dispatcher thread only). ----
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t trajectory_frames = 0;  // numbering for --inject-corrupt-frame
  auto sink = [&](const std::string& feed, const frt::Dataset& published,
                  const frt::WindowReport& window) -> frt::Status {
    frt::obs::ScopedSpan span("forward", frt::obs::SpanCategory::kNet,
                              feed);
    // One buffered write per window: frames of one window arrive at the
    // aggregator back to back, and a mid-window disconnect still fails
    // this window's publish.
    std::string batch;
    for (const auto& t : published.trajectories()) {
      const size_t frame_start = batch.size();
      frt::net::AppendFrame(
          &batch, frt::net::FrameType::kTrajectory,
          frt::net::EncodeTrajectoryPayload(feed, t));
      ++trajectory_frames;
      if (args.inject_corrupt_frame != 0 &&
          trajectory_frames == args.inject_corrupt_frame) {
        // Flip one payload byte AFTER the CRC was computed: the receiver
        // must detect the mismatch and quarantine this edge's feeds.
        batch[frame_start + frt::net::kFrameHeaderSize] ^=
            static_cast<char>(0xFF);
        std::fprintf(stderr,
                     "edge: injected corrupt payload byte into trajectory "
                     "frame %llu (feed %s)\n",
                     static_cast<unsigned long long>(trajectory_frames),
                     feed.c_str());
      }
      ++frames_sent;
    }
    if (auto st = frt::net::WriteAll(upstream.fd(), batch.data(),
                                     batch.size());
        !st.ok()) {
      return frt::Status::IOError("forward to aggregator failed: " +
                                  std::string(st.message()));
    }
    bytes_sent += batch.size();
    std::fprintf(stderr,
                 "feed %s window %zu: forwarded %zu trajs, eps=%.2f "
                 "(total %.2f)\n",
                 feed.c_str(), window.index, window.trajectories,
                 window.epsilon_spent, window.epsilon_total);
    return frt::Status::OK();
  };

  frt::ServiceDispatcher service(std::move(config), sink);
  if (auto st = service.Start(args.pipeline.seed); !st.ok()) {
    std::fprintf(stderr, "edge: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- Admin plane (--admin-listen): the pre-registered /metrics and
  // /healthz endpoints plus runtime control over tracing and the metrics
  // cadence. Declared after the service so its thread joins before the
  // service goes away. ----
  std::unique_ptr<frt::obs::AdminServer> admin;
  if (admin_endpoint.has_value()) {
    frt::obs::AdminServer::Options admin_options;
    admin_options.endpoint = *admin_endpoint;
    admin = std::make_unique<frt::obs::AdminServer>(admin_options);
    frt::obs::ControlHooks hooks;
    hooks.trace_out = args.obs.trace_out;
    hooks.trace_buffer_events =
        static_cast<size_t>(args.obs.trace_buffer_events);
    frt::MetricsExporter* exporter = metrics.get();
    frt::ServiceDispatcher* service_ptr = &service;
    hooks.set_metrics_interval_ms = [service_ptr, exporter](int64_t ms) {
      service_ptr->SetMetricsIntervalMs(ms);
      if (exporter != nullptr) exporter->SetIntervalMs(ms);
      return true;
    };
    admin->Handle("POST", "/control",
                  frt::obs::MakeControlHandler(std::move(hooks)));
    if (auto st = admin->Start(); !st.ok()) {
      std::fprintf(stderr, "edge: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "edge: admin plane on %s\n",
                 args.obs.admin_listen.c_str());
  }

  // ---- Ingest (same shapes as frt_serve). ----
  frt::Status ingest_status = frt::Status::OK();
  if (!args.feeds.empty()) {
    std::ifstream feeds_file;
    if (args.feeds != "-") {
      feeds_file.open(args.feeds);
      if (!feeds_file.is_open()) {
        std::fprintf(stderr, "cannot open feeds: %s\n", args.feeds.c_str());
        return 1;
      }
    }
    std::istream& in = args.feeds == "-" ? std::cin : feeds_file;
    ingest_status = IngestMultiFeedCsv(in, service);
  } else {
    std::vector<frt::Status> statuses(args.inputs.size());
    std::vector<std::thread> readers;
    readers.reserve(args.inputs.size());
    for (size_t i = 0; i < args.inputs.size(); ++i) {
      readers.emplace_back([&, i] {
        const auto& [feed, path] = args.inputs[i];
        std::ifstream file(path);
        if (!file.is_open()) {
          statuses[i] = frt::Status::IOError("cannot open input: " + path);
          return;
        }
        frt::TrajectoryReader reader(file);
        for (;;) {
          auto next = reader.Next();
          if (!next.ok()) {
            statuses[i] = next.status();
            return;
          }
          if (!next->has_value()) return;
          if (!service.Offer(feed, std::move(**next))) return;
        }
      });
    }
    for (auto& t : readers) t.join();
    for (auto& st : statuses) {
      if (!st.ok()) {
        ingest_status = st;
        break;
      }
    }
  }

  frt::Status run_status = service.Finish();
  // The dispatcher is joined; close the stream from this thread. A failed
  // bye is a warning, not an error — every published window already made
  // it upstream (WriteAll returned), only the goodbye was lost.
  {
    std::string bye;
    frt::net::AppendFrame(&bye, frt::net::FrameType::kBye, {});
    if (auto st = frt::net::WriteAll(upstream.fd(), bye.data(), bye.size());
        !st.ok()) {
      std::fprintf(stderr, "edge: bye failed (ignored): %s\n",
                   st.ToString().c_str());
    }
  }
  upstream.Close();

  if (metrics) metrics->Stop();
  if (!args.obs.trace_out.empty()) {
    const frt::obs::TraceDump dump = frt::obs::TraceRecorder::Get().Stop();
    if (auto st = frt::obs::WriteChromeTrace(dump, args.obs.trace_out);
        !st.ok()) {
      if (run_status.ok()) run_status = st;
    } else {
      std::fprintf(stderr,
                   "trace: wrote %zu span(s) from %zu thread(s) to %s "
                   "(%llu dropped)\n",
                   dump.events.size(), dump.threads.size(),
                   args.obs.trace_out.c_str(),
                   static_cast<unsigned long long>(dump.dropped));
    }
  }
  if (run_status.ok()) run_status = ingest_status;
  if (!run_status.ok()) {
    std::fprintf(stderr, "edge: %s\n", run_status.ToString().c_str());
    return 1;
  }

  // ---- Reports. ----
  const frt::ServiceReport& report = service.report();
  for (const frt::FeedReport& feed : report.feeds_report) {
    if (feed.quarantined) {
      std::fprintf(stderr, "quarantine: feed %s: %s\n", feed.feed.c_str(),
                   feed.quarantine_reason.c_str());
    }
  }
  std::fprintf(
      stderr,
      "edge done in %.1fs: %zu feeds, %zu windows published / %zu refused, "
      "%zu trajs in / %zu forwarded (%llu frames, %llu bytes) to %s\n",
      report.wall_seconds, report.feeds, report.windows_published,
      report.windows_refused, report.trajectories_in,
      report.trajectories_published,
      static_cast<unsigned long long>(frames_sent),
      static_cast<unsigned long long>(bytes_sent),
      args.transport.connect.c_str());
  int exit_code = 0;
  if (report.feeds_quarantined > 0) {
    std::fprintf(stderr, "%zu feed(s) quarantined locally\n",
                 report.feeds_quarantined);
    exit_code = 3;
  }
  if (frt::ServiceHadRefusals(report)) {
    std::fprintf(stderr,
                 "budget exhausted on at least one feed: %zu window(s) / "
                 "%zu trajectories refused, %zu evicted\n",
                 report.windows_refused, report.trajectories_refused,
                 report.trajectories_evicted);
    exit_code = 3;
  }
  return exit_code;
}
