#!/usr/bin/env python3
"""Summarize and validate a Chrome trace-event JSON file from --trace-out.

Reads the object-format trace written by frt_serve / frt_stream, checks its
shape (every event needs name/ph/pid/tid/ts; "X" events need dur), and
prints a per-span-name breakdown plus drop counters. Intended both for
eyeballing a run and as a CI gate:

  trace_summary.py trace.json
  trace_summary.py trace.json --require assemble,anonymize,publish
  trace_summary.py trace.json --min-count anonymize=14 --min-count publish=14

Exit codes: 0 = valid (and all --require/--min-count satisfied);
1 = validation or requirement failure; 2 = usage error.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(
        description="Validate and summarize a --trace-out JSON file.")
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require", default="",
        help="comma-separated span names that must appear at least once")
    parser.add_argument(
        "--min-count", action="append", default=[], metavar="NAME=N",
        help="require at least N complete spans named NAME (repeatable)")
    parser.add_argument(
        "--max-dropped", type=int, default=-1, metavar="N",
        help="fail if more than N events were dropped (default: no limit)")
    args = parser.parse_args()

    min_counts = {}
    for spec in args.min_count:
        name, eq, count = spec.partition("=")
        if not eq or not name:
            parser.error(f"--min-count expects NAME=N, got '{spec}'")
        try:
            min_counts[name] = int(count)
        except ValueError:
            parser.error(f"--min-count expects an integer count in '{spec}'")

    try:
        with open(args.trace, encoding="utf-8") as f:
            trace = json.load(f)
    except OSError as e:
        return fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return fail("expected the object format with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents is not an array")

    # Per-name aggregation over complete ("X") events; durations are in us.
    stats = defaultdict(lambda: {"count": 0, "total": 0.0, "max": 0.0})
    threads = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                return fail(f"traceEvents[{i}] is missing '{key}'")
        ph = ev["ph"]
        if ph == "M":
            if ev["name"] == "thread_name":
                threads[ev["tid"]] = ev.get("args", {}).get("name", "")
            continue
        if ph != "X":
            return fail(f"traceEvents[{i}] has unexpected ph '{ph}'")
        for key in ("ts", "dur"):
            if not isinstance(ev.get(key), (int, float)):
                return fail(f"traceEvents[{i}] needs a numeric '{key}'")
        s = stats[ev["name"]]
        s["count"] += 1
        s["total"] += ev["dur"]
        s["max"] = max(s["max"], ev["dur"])

    other = trace.get("otherData", {})
    dropped = int(other.get("dropped_events", 0))

    print(f"{args.trace}: {sum(s['count'] for s in stats.values())} "
          f"span(s), {len(stats)} name(s), {len(threads)} named thread(s), "
          f"{dropped} dropped")
    for name in sorted(stats, key=lambda n: -stats[n]["total"]):
        s = stats[name]
        mean = s["total"] / s["count"]
        print(f"  {name:<18} count={s['count']:<7} total={s['total']/1e3:10.3f} ms "
              f"mean={mean/1e3:9.3f} ms max={s['max']/1e3:9.3f} ms")
    for tid in sorted(threads):
        print(f"  thread {tid}: {threads[tid]}")

    status = 0
    for name in filter(None, args.require.split(",")):
        if stats[name]["count"] == 0:
            status = fail(f"required span '{name}' never appeared")
    for name, want in min_counts.items():
        got = stats[name]["count"]
        if got < want:
            status = fail(f"span '{name}': {got} occurrence(s), need >= {want}")
    if args.max_dropped >= 0 and dropped > args.max_dropped:
        status = fail(f"{dropped} dropped event(s), limit {args.max_dropped}")
    return status


if __name__ == "__main__":
    sys.exit(main())
