// frt_serve — multi-feed trajectory anonymization service.
//
// Serves many independent trajectory feeds through one shared worker pool
// with per-feed DP budgets (src/service). Feeds arrive either interleaved
// in one multi-feed CSV with a leading feed column, or as one classic
// dataset CSV per feed:
//
//   frt_serve --feeds feeds.csv --output-dir out/       # feed,traj_id,x,y,t
//   frt_serve --input city_a.csv --input b=taxi_b.csv --output -
//   frt_serve --listen unix:/tmp/frt.sock --listen-conns 2 --output -
//
// With --listen the service becomes the aggregator of the distributed
// ingress tier (src/net): frt_edge processes connect over a Unix or TCP
// socket and stream framed trajectories in. Backpressure is the
// dispatcher's bounded arrival queue — a slow aggregator blocks the
// reader, fills the kernel buffers, and stalls the edge's writes. A
// malformed or corrupt frame quarantines the feeds on that connection
// (their output stops at the fault; exit code 3) without disturbing any
// other feed. --listen-conns N exits cleanly after N edge streams end;
// otherwise stop ingest with SIGINT/SIGTERM and the service drains.
//
// Each feed gets its own session: its own window assembler, its own
// wholesale/per-object budget ledgers, and its own deterministic RNG
// stream — one feed exhausting its budget never changes another feed's
// published windows, and a feed's output is bit-identical to a solo run
// at the same seed. Windows close by count (--window), by wall-clock
// deadline (--close-after-ms), or at end of input; sessions idle longer
// than --evict-idle-ms are flushed and evicted (their budget state
// carries into any later revival).
//
//   frt_serve (--feeds FILE|- | --input [NAME=]FILE ...)
//       (--output FILE|- | --output-dir DIR)
//       [--evict-idle-ms 0] [--pool-threads 0] [--max-in-flight 0]
//       [durability flags: --state-dir --checkpoint-interval-ms
//        --metrics --metrics-interval-ms --metrics-per-feed]
//       [observability flags: --trace-out --trace-buffer-events
//        --metrics-histograms --admin-listen]
//       [stream flags: --window --stride --budget --per-object-budget
//        --evict-exhausted --queue --close-after-ms ...]
//       [pipeline flags: --epsilon-global --epsilon-local --m --strategy
//        --order --seed --shards ...]
//
// With --state-dir the per-feed budget ledgers are checkpointed durably
// (write-ahead of every publish) and recovered on the next start through
// the same conservative carry path idle eviction uses — a crash or
// restart never re-grants spent epsilon. --metrics appends one
// machine-readable frt_metrics line per interval (see
// service/metrics_exporter.h).
//
// --output writes one merged stream in the multi-feed format (lines
// `feed,traj_id,x,y,t`); --output-dir writes one classic dataset CSV per
// feed. Per-feed budgets come from the shared stream flags: every feed
// gets the same --budget / --per-object-budget applied to its OWN ledger.
// --queue bounds the dispatcher's tagged arrival queue;
// --stop-on-exhausted ends the service at the first refused window on ANY
// feed (ingress stops, already-closed windows drain, clean exit).
//
// Exit codes: 0 = every window of every feed published; 3 = completed but
// at least one feed had a window refused (or object evicted) on budget,
// or was quarantined on a malformed stream; 1 = runtime error; 2 = usage
// error.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.h"
#include "common/strings.h"
#include "frt.h"
#include "net/ingress.h"
#include "net/socket.h"
#include "obs/admin_server.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "service/dispatcher.h"
#include "stream/ingest.h"
#include "traj/io.h"

namespace {

struct Args {
  std::string feeds;                             // --feeds FILE|-
  std::vector<std::pair<std::string, std::string>> inputs;  // name, path
  std::string output;      // --output FILE|-
  std::string output_dir;  // --output-dir DIR
  long long evict_idle_ms = 0;
  unsigned pool_threads = 0;
  size_t max_in_flight = 0;
  frt::cli::StreamArgs stream;
  frt::cli::PipelineArgs pipeline;
  frt::cli::DurabilityArgs durability;
  frt::cli::ObservabilityArgs obs;
  frt::cli::TransportArgs transport;
};

/// The ingress server a SIGINT/SIGTERM should stop (Stop() is one atomic
/// store plus a shutdown(2) — both async-signal-safe).
std::atomic<frt::net::IngressServer*> g_ingress{nullptr};

void StopIngressOnSignal(int) {
  if (frt::net::IngressServer* ingress =
          g_ingress.load(std::memory_order_acquire)) {
    ingress->Stop();
  }
}

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s (--feeds FILE|- | --input [NAME=]FILE ... | --listen EP)\n"
      "          (--output FILE|- | --output-dir DIR) [options]\n"
      "  --feeds FILE|-       interleaved multi-feed CSV "
      "(feed,traj_id,x,y,t)\n"
      "  --input [NAME=]FILE  one dataset CSV per feed (repeatable); feed "
      "id is\n"
      "                       NAME or the file stem\n"
      "  --output FILE|-      merged multi-feed CSV output\n"
      "  --output-dir DIR     one <feed>.csv per feed (DIR must exist)\n"
      "  --evict-idle-ms N    flush + evict sessions idle for N ms "
      "(default 0 = never)\n"
      "  --pool-threads N     shared worker pool size (default 0 = "
      "max(2, cores))\n"
      "  --max-in-flight N    concurrent window jobs across feeds "
      "(default 0 = 2x pool)\n"
      "%s%s%s%s%s",
      prog, frt::cli::TransportUsageText(), frt::cli::DurabilityUsageText(),
      frt::cli::ObservabilityUsageText(), frt::cli::StreamUsageText(),
      frt::cli::PipelineUsageText());
}

std::string FeedNameFromPath(const std::string& path) {
  size_t begin = path.find_last_of("/\\");
  begin = begin == std::string::npos ? 0 : begin + 1;
  size_t end = path.rfind('.');
  if (end == std::string::npos || end <= begin) end = path.size();
  return path.substr(begin, end - begin);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    switch (frt::cli::ParsePipelineFlag(argc, argv, &i, &args->pipeline)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseStreamFlag(argc, argv, &i, &args->stream)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (
        frt::cli::ParseDurabilityFlag(argc, argv, &i, &args->durability)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseObservabilityFlag(argc, argv, &i, &args->obs)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseTransportFlag(argc, argv, &i, &args->transport)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--feeds") == 0) {
      if ((v = next("--feeds")) == nullptr) return false;
      args->feeds = v;
    } else if (std::strcmp(argv[i], "--input") == 0) {
      if ((v = next("--input")) == nullptr) return false;
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq != std::string::npos && eq > 0) {
        args->inputs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      } else {
        args->inputs.emplace_back(FeedNameFromPath(spec), spec);
      }
    } else if (std::strcmp(argv[i], "--output") == 0) {
      if ((v = next("--output")) == nullptr) return false;
      args->output = v;
    } else if (std::strcmp(argv[i], "--output-dir") == 0) {
      if ((v = next("--output-dir")) == nullptr) return false;
      args->output_dir = v;
    } else if (std::strcmp(argv[i], "--evict-idle-ms") == 0) {
      if ((v = next("--evict-idle-ms")) == nullptr) return false;
      int64_t n = 0;
      if (!frt::cli::ParseFlagInt64("--evict-idle-ms", v, &n)) return false;
      if (n < 0) {
        std::fprintf(stderr, "--evict-idle-ms must be >= 0\n");
        return false;
      }
      args->evict_idle_ms = n;
    } else if (std::strcmp(argv[i], "--pool-threads") == 0) {
      if ((v = next("--pool-threads")) == nullptr) return false;
      uint64_t n = 0;
      if (!frt::cli::ParseFlagUint64("--pool-threads", v, &n)) return false;
      args->pool_threads = static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--max-in-flight") == 0) {
      if ((v = next("--max-in-flight")) == nullptr) return false;
      uint64_t n = 0;
      if (!frt::cli::ParseFlagUint64("--max-in-flight", v, &n)) {
        return false;
      }
      args->max_in_flight = static_cast<size_t>(n);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  if (!args->transport.connect.empty()) {
    // Serve is the aggregator end of the transport; edges connect to it.
    std::fprintf(stderr,
                 "frt_serve does not take --connect (use frt_edge to "
                 "forward into a serving aggregator)\n");
    return false;
  }
  const int sources = (args->feeds.empty() ? 0 : 1) +
                      (args->inputs.empty() ? 0 : 1) +
                      (args->transport.listen.empty() ? 0 : 1);
  if (sources != 1) {
    std::fprintf(stderr,
                 "exactly one of --feeds, --input (repeatable), or "
                 "--listen is required\n");
    return false;
  }
  if (args->output.empty() == args->output_dir.empty()) {
    std::fprintf(stderr,
                 "exactly one of --output or --output-dir is required\n");
    return false;
  }
  std::set<std::string> seen;
  for (const auto& [name, path] : args->inputs) {
    if (name.empty()) {
      std::fprintf(stderr, "empty feed name for --input %s\n", path.c_str());
      return false;
    }
    if (!seen.insert(name).second) {
      // Two readers racing arrivals into one session would make window
      // composition depend on thread interleaving.
      std::fprintf(stderr,
                   "duplicate feed name '%s' (from --input %s); use "
                   "NAME=FILE to disambiguate\n",
                   name.c_str(), path.c_str());
      return false;
    }
  }
  return true;
}

/// /feedz JSON from the dispatcher's introspection board. The epsilon
/// fields are emitted as strings with the exact frt_feed line formats
/// (eps_spent %.6f, eps_remaining %g), so a scrape taken after shutdown
/// is bit-identical to the final per-feed report lines — and "inf" never
/// produces an invalid JSON number.
std::string RenderFeedz(const frt::ServiceIntrospection& intro) {
  std::string out = frt::StrFormat(
      "{\"seq\":%llu,\"uptime_ms\":%lld,\"finished\":%s,\"aborted\":%s,"
      "\"feeds\":%zu,\"active_sessions\":%zu,\"queue_depth\":%zu,"
      "\"backlog_windows\":%zu,\"in_flight\":%zu,"
      "\"feeds_quarantined\":%zu,\"feed\":[",
      static_cast<unsigned long long>(intro.seq),
      static_cast<long long>(intro.uptime_ms),
      intro.finished ? "true" : "false", intro.aborted ? "true" : "false",
      intro.feeds, intro.active_sessions, intro.queue_depth,
      intro.backlog_windows, intro.in_flight, intro.feeds_quarantined);
  bool first = true;
  for (const frt::ServiceIntrospection::Feed& feed : intro.feeds_detail) {
    if (!first) out += ',';
    first = false;
    out += frt::StrFormat(
        "{\"feed\":\"%s\",\"eps_spent\":\"%.6f\",\"eps_remaining\":\"%g\","
        "\"windows_published\":%zu,\"windows_refused\":%zu,\"backlog\":%zu,"
        "\"quarantined\":%s",
        frt::obs::JsonEscape(feed.feed).c_str(), feed.epsilon_spent,
        feed.epsilon_remaining, feed.windows_published,
        feed.windows_refused, feed.backlog,
        feed.quarantined ? "true" : "false");
    if (feed.quarantined) {
      out += ",\"quarantine_reason\":\"" +
             frt::obs::JsonEscape(feed.quarantine_reason) + "\"";
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

/// Streams the interleaved multi-feed CSV (`feed,traj_id,x,y,t`) into the
/// dispatcher. Per feed, consecutive same-id lines form one trajectory —
/// the same contiguity contract the single-feed format has always had,
/// applied per feed so distinct feeds may interleave freely.
frt::Status IngestMultiFeedCsv(std::istream& in,
                               frt::ServiceDispatcher& service) {
  struct Assembly {
    frt::Trajectory current{0};
    bool has_current = false;
  };
  std::map<std::string, Assembly> assemblies;
  std::vector<std::string> order;
  std::string line;
  size_t lineno = 0;
  bool stopped = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos || comma == 0) {
      return frt::Status::InvalidArgument(
          "line " + std::to_string(lineno) +
          ": expected feed,traj_id,x,y,t");
    }
    const std::string feed = line.substr(0, comma);
    FRT_ASSIGN_OR_RETURN(
        const std::optional<frt::CsvRecord> record,
        frt::ParseCsvRecord(
            std::string_view(line).substr(comma + 1), lineno));
    if (!record.has_value()) continue;
    auto [it, inserted] = assemblies.try_emplace(feed);
    if (inserted) order.push_back(feed);
    Assembly& assembly = it->second;
    if (assembly.has_current && assembly.current.id() != record->id) {
      if (!service.Offer(feed, std::move(assembly.current))) {
        stopped = true;  // service aborted; stop reading
        break;
      }
      assembly.has_current = false;
    }
    if (!assembly.has_current) {
      assembly.current = frt::Trajectory(record->id);
      assembly.has_current = true;
    }
    assembly.current.Append(record->p, record->t);
  }
  if (!stopped) {
    for (const auto& feed : order) {
      Assembly& assembly = assemblies[feed];
      if (assembly.has_current && !assembly.current.empty()) {
        if (!service.Offer(feed, std::move(assembly.current))) break;
      }
    }
  }
  return frt::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::ios::sync_with_stdio(false);
  // A peer vanishing mid-write must surface as an I/O error on that one
  // connection, never a process-wide SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  frt::FrequencyRandomizerConfig pipeline_config;
  if (!frt::cli::MakePipelineConfig(args.pipeline, &pipeline_config)) {
    Usage(argv[0]);
    return 2;
  }
  // Resolve the listen endpoint before anything heavyweight starts so a
  // bad --listen is a usage error, not a mid-run failure.
  std::optional<frt::net::Endpoint> listen_endpoint;
  if (!args.transport.listen.empty()) {
    auto endpoint = frt::net::ParseEndpoint(args.transport.listen);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   endpoint.status().ToString().c_str());
      Usage(argv[0]);
      return 2;
    }
    listen_endpoint = *std::move(endpoint);
  }
  std::optional<frt::net::Endpoint> admin_endpoint;
  if (!args.obs.admin_listen.empty()) {
    auto endpoint = frt::net::ParseEndpoint(args.obs.admin_listen);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   endpoint.status().ToString().c_str());
      Usage(argv[0]);
      return 2;
    }
    admin_endpoint = *std::move(endpoint);
  }
  frt::ServiceConfig config;
  if (!frt::cli::MakeStreamConfig(args.stream, args.pipeline,
                                  pipeline_config, &config.stream)) {
    Usage(argv[0]);
    return 2;
  }
  config.pool_threads = args.pool_threads;
  config.max_in_flight = args.max_in_flight;
  config.idle_evict_ms = args.evict_idle_ms;
  // The shared --queue flag bounds the service's tagged arrival queue
  // (per-session queues do not exist; backpressure is at the dispatcher).
  config.arrival_queue_capacity = config.stream.queue_capacity;
  config.state_dir = args.durability.state_dir;
  config.checkpoint_interval_ms = args.durability.checkpoint_interval_ms;

  // Arm span tracing before any ingest/service thread starts so the trace
  // covers the whole run.
  if (!args.obs.trace_out.empty()) {
    frt::obs::TraceRecorder::Options trace_options;
    trace_options.buffer_events =
        static_cast<size_t>(args.obs.trace_buffer_events);
    frt::obs::TraceRecorder::Get().Start(trace_options);
    frt::obs::SetTraceThreadName("main");
  }

  // The exporter outlives the service (the dispatcher thread publishes
  // into it until Finish), so it is declared first and stopped last.
  std::unique_ptr<frt::MetricsExporter> metrics;
  if (!args.durability.metrics.empty()) {
    metrics = std::make_unique<frt::MetricsExporter>(
        frt::cli::MakeMetricsOptions(args.durability, args.obs));
    if (auto st = metrics->Start(); !st.ok()) {
      std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
      return 1;
    }
    config.metrics = metrics.get();
    config.metrics_interval_ms = args.durability.metrics_interval_ms;
  }

  // ---- Output plumbing (called from the dispatcher thread only). ----
  std::ofstream merged_file;
  std::ostream* merged = nullptr;
  if (!args.output.empty()) {
    if (args.output == "-") {
      merged = &std::cout;
    } else {
      merged_file.open(args.output, std::ios::trunc);
      if (!merged_file.is_open()) {
        std::fprintf(stderr, "cannot open output: %s\n",
                     args.output.c_str());
        return 1;
      }
      merged = &merged_file;
    }
  }
  std::map<std::string, std::unique_ptr<std::ofstream>> per_feed_out;
  bool wrote_merged_header = false;
  auto sink = [&](const std::string& feed, const frt::Dataset& published,
                  const frt::WindowReport& window) -> frt::Status {
    std::ostream* out = nullptr;
    if (merged != nullptr) {
      out = merged;
      if (!wrote_merged_header) {
        *out << "# feed,traj_id,x,y,t\n";
        wrote_merged_header = true;
      }
      const std::string prefix = feed + ",";
      for (const auto& t : published.trajectories()) {
        frt::WriteTrajectoryCsv(t, *out, prefix);
      }
    } else {
      auto it = per_feed_out.find(feed);
      if (it == per_feed_out.end()) {
        auto file = std::make_unique<std::ofstream>(
            args.output_dir + "/" + feed + ".csv", std::ios::trunc);
        if (!file->is_open()) {
          return frt::Status::IOError("cannot open " + args.output_dir +
                                      "/" + feed + ".csv");
        }
        *file << "# traj_id,x,y,t\n";
        it = per_feed_out.emplace(feed, std::move(file)).first;
      }
      for (const auto& t : published.trajectories()) {
        frt::WriteTrajectoryCsv(t, *it->second);
      }
      out = it->second.get();
    }
    out->flush();
    if (!out->good()) return frt::Status::IOError("write failed");
    std::fprintf(stderr,
                 "feed %s window %zu: %zu trajs, eps=%.2f (total %.2f), "
                 "%s-closed, wait %.1f ms, publish %.1f ms\n",
                 feed.c_str(), window.index, window.trajectories,
                 window.epsilon_spent, window.epsilon_total,
                 window.close_reason == frt::WindowClose::kCount
                     ? "count"
                     : (window.close_reason == frt::WindowClose::kDeadline
                            ? "deadline"
                            : "final"),
                 window.close_wait_ms, window.publish_latency_ms);
    frt::cli::PrintAuditReport(window.batch.audit);
    return frt::Status::OK();
  };

  frt::ServiceDispatcher service(std::move(config), sink);
  if (auto st = service.Start(args.pipeline.seed); !st.ok()) {
    std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- Admin plane (--admin-listen). Declared after the service so it
  // is destroyed (and its thread joined) before the service goes away;
  // handlers read only the registry and the introspection board. ----
  std::unique_ptr<frt::obs::AdminServer> admin;
  if (admin_endpoint.has_value()) {
    frt::obs::AdminServer::Options admin_options;
    admin_options.endpoint = *admin_endpoint;
    admin = std::make_unique<frt::obs::AdminServer>(admin_options);
    // Staleness threshold for /healthz and /readyz; follows the metrics
    // interval when /control retunes it.
    auto stale_after_ms = std::make_shared<std::atomic<int64_t>>(
        std::max<int64_t>(5 * args.durability.metrics_interval_ms, 5000));
    admin->Handle(
        "GET", "/healthz",
        [&service, stale_after_ms](const frt::obs::HttpRequest&) {
          frt::obs::HttpResponse r;
          const auto intro = service.Introspect();
          if (intro == nullptr) {
            r.status = 503;
            r.body = "starting\n";
            return r;
          }
          const double age_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - intro->published_at)
                  .count();
          if (!intro->finished &&
              age_ms > static_cast<double>(stale_after_ms->load(
                           std::memory_order_relaxed))) {
            r.status = 503;
            r.body = frt::StrFormat(
                "stale: introspection board is %.0f ms old (seq %llu)\n",
                age_ms, static_cast<unsigned long long>(intro->seq));
            return r;
          }
          r.body = "ok\n";
          return r;
        });
    admin->Handle(
        "GET", "/readyz",
        [&service, stale_after_ms](const frt::obs::HttpRequest&) {
          frt::obs::HttpResponse r;
          const auto intro = service.Introspect();
          if (intro == nullptr) {
            r.status = 503;
            r.body = "starting\n";
            return r;
          }
          if (intro->aborted || intro->finished) {
            r.status = 503;
            r.body = intro->aborted ? "aborted\n" : "finished\n";
            return r;
          }
          const double age_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - intro->published_at)
                  .count();
          if (age_ms > static_cast<double>(stale_after_ms->load(
                           std::memory_order_relaxed))) {
            r.status = 503;
            r.body = "stale\n";
            return r;
          }
          r.body = "ready\n";
          return r;
        });
    admin->Handle("GET", "/feedz",
                  [&service](const frt::obs::HttpRequest&) {
                    frt::obs::HttpResponse r;
                    r.content_type = "application/json";
                    const auto intro = service.Introspect();
                    if (intro == nullptr) {
                      r.status = 503;
                      r.body = "{\"error\":\"starting\"}\n";
                      return r;
                    }
                    r.body = RenderFeedz(*intro);
                    return r;
                  });
    frt::obs::ControlHooks hooks;
    hooks.trace_out = args.obs.trace_out;
    hooks.trace_buffer_events =
        static_cast<size_t>(args.obs.trace_buffer_events);
    frt::MetricsExporter* exporter = metrics.get();
    frt::ServiceDispatcher* service_ptr = &service;
    hooks.set_metrics_interval_ms = [service_ptr, exporter,
                                     stale_after_ms](int64_t ms) {
      service_ptr->SetMetricsIntervalMs(ms);
      if (exporter != nullptr) exporter->SetIntervalMs(ms);
      stale_after_ms->store(std::max<int64_t>(5 * ms, 5000),
                            std::memory_order_relaxed);
      return true;
    };
    admin->Handle("POST", "/control",
                  frt::obs::MakeControlHandler(std::move(hooks)));
    if (auto st = admin->Start(); !st.ok()) {
      std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "serve: admin plane on %s\n",
                 args.obs.admin_listen.c_str());
  }

  // ---- Ingest. ----
  frt::Status ingest_status = frt::Status::OK();
  if (listen_endpoint.has_value()) {
    frt::net::IngressServer::Options ingress_options;
    ingress_options.endpoint = *listen_endpoint;
    ingress_options.max_connections =
        static_cast<size_t>(args.transport.listen_conns);
    frt::net::IngressServer ingress(
        ingress_options,
        [&service](std::string feed, frt::Trajectory t) {
          return service.Offer(std::move(feed), std::move(t));
        },
        [&service](const std::string& feed, const std::string& reason) {
          service.OfferQuarantine(feed, reason);
        });
    if (auto st = ingress.Start(); !st.ok()) {
      std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "serve: listening on %s%s\n",
                 args.transport.listen.c_str(),
                 args.transport.listen_conns > 0
                     ? ""
                     : " (stop with SIGINT/SIGTERM)");
    g_ingress.store(&ingress, std::memory_order_release);
    std::signal(SIGINT, StopIngressOnSignal);
    std::signal(SIGTERM, StopIngressOnSignal);
    ingress.Wait();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_ingress.store(nullptr, std::memory_order_release);
    const frt::net::IngressServer::Stats& stats = ingress.stats();
    std::fprintf(stderr,
                 "ingress: %llu connection(s), %llu frame(s), %llu "
                 "trajectories, %llu quarantine event(s)\n",
                 static_cast<unsigned long long>(stats.connections),
                 static_cast<unsigned long long>(stats.frames),
                 static_cast<unsigned long long>(stats.trajectories),
                 static_cast<unsigned long long>(stats.quarantine_events));
  } else if (!args.feeds.empty()) {
    std::ifstream feeds_file;
    if (args.feeds != "-") {
      feeds_file.open(args.feeds);
      if (!feeds_file.is_open()) {
        std::fprintf(stderr, "cannot open feeds: %s\n", args.feeds.c_str());
        return 1;
      }
    }
    std::istream& in = args.feeds == "-" ? std::cin : feeds_file;
    ingest_status = IngestMultiFeedCsv(in, service);
  } else {
    // One ingest thread per input file; each drives its own feed.
    std::vector<frt::Status> statuses(args.inputs.size());
    std::vector<std::thread> readers;
    readers.reserve(args.inputs.size());
    for (size_t i = 0; i < args.inputs.size(); ++i) {
      readers.emplace_back([&, i] {
        const auto& [feed, path] = args.inputs[i];
        std::ifstream file(path);
        if (!file.is_open()) {
          statuses[i] = frt::Status::IOError("cannot open input: " + path);
          return;
        }
        frt::TrajectoryReader reader(file);
        for (;;) {
          auto next = reader.Next();
          if (!next.ok()) {
            statuses[i] = next.status();
            return;
          }
          if (!next->has_value()) return;
          if (!service.Offer(feed, std::move(**next))) return;
        }
      });
    }
    for (auto& t : readers) t.join();
    for (auto& st : statuses) {
      if (!st.ok()) {
        ingest_status = st;
        break;
      }
    }
  }

  frt::Status run_status = service.Finish();
  if (metrics) metrics->Stop();  // flush the final frt_metrics line
  if (!args.obs.trace_out.empty()) {
    // Everything is quiesced (Finish joined the pool and dispatcher), so
    // the dump is complete.
    const frt::obs::TraceDump dump = frt::obs::TraceRecorder::Get().Stop();
    if (auto st = frt::obs::WriteChromeTrace(dump, args.obs.trace_out);
        !st.ok()) {
      if (run_status.ok()) run_status = st;
    } else {
      std::fprintf(stderr,
                   "trace: wrote %zu span(s) from %zu thread(s) to %s "
                   "(%llu dropped)\n",
                   dump.events.size(), dump.threads.size(),
                   args.obs.trace_out.c_str(),
                   static_cast<unsigned long long>(dump.dropped));
    }
  }
  if (run_status.ok()) run_status = ingest_status;
  if (!run_status.ok()) {
    std::fprintf(stderr, "serve: %s\n", run_status.ToString().c_str());
    return 1;
  }

  // ---- Reports. ----
  const frt::ServiceReport& report = service.report();
  const bool per_object =
      args.stream.per_object_budget > 0.0;
  for (const frt::FeedReport& feed : report.feeds_report) {
    const frt::StreamReport& s = feed.stream;
    std::fprintf(stderr,
                 "feed %s: %zu windows published (%zu trajs), %zu refused "
                 "(%zu trajs), %zu evicted, %zu deadline-closed, eps %s "
                 "%.2f, %llu session(s), close-wait p50/p99/max "
                 "%.1f/%.1f/%.1f ms, publish p50/p99/max %.1f/%.1f/%.1f "
                 "ms%s\n",
                 feed.feed.c_str(), s.windows_published,
                 s.trajectories_published, s.windows_refused,
                 s.trajectories_refused, s.trajectories_evicted,
                 s.windows_deadline_closed,
                 per_object ? "max-object" : "ledger", s.epsilon_spent,
                 static_cast<unsigned long long>(feed.sessions),
                 feed.close_wait_p50_ms, feed.close_wait_p99_ms,
                 feed.close_wait_max_ms, feed.publish_p50_ms,
                 feed.publish_p99_ms, feed.publish_max_ms,
                 feed.quarantined
                     ? " [quarantined]"
                     : (feed.evicted ? " [idle-evicted]" : ""));
  }
  for (const frt::FeedReport& feed : report.feeds_report) {
    if (feed.quarantined) {
      std::fprintf(stderr, "quarantine: feed %s: %s\n", feed.feed.c_str(),
                   feed.quarantine_reason.c_str());
    }
  }
  std::fprintf(
      stderr,
      "serve done in %.1fs: %zu feeds, %zu sessions (peak %zu active, %zu "
      "evicted), %zu windows published / %zu refused (%zu "
      "deadline-closed), %zu trajs in / %zu published, close-wait "
      "p50/p99/max %.1f/%.1f/%.1f ms, publish p50/p99/max %.1f/%.1f/%.1f "
      "ms\n",
      report.wall_seconds, report.feeds, report.sessions_created,
      report.peak_active_sessions, report.sessions_evicted,
      report.windows_published, report.windows_refused,
      report.windows_deadline_closed, report.trajectories_in,
      report.trajectories_published, report.close_wait_p50_ms,
      report.close_wait_p99_ms, report.close_wait_max_ms,
      report.publish_p50_ms, report.publish_p99_ms, report.publish_max_ms);
  if (!args.durability.state_dir.empty()) {
    std::fprintf(
        stderr,
        "durability: recovered %zu feed(s) from %s, wrote %zu "
        "checkpoint(s) (last seq %llu)\n",
        report.feeds_recovered, args.durability.state_dir.c_str(),
        report.checkpoints_written,
        static_cast<unsigned long long>(report.checkpoint_sequence));
  }
  int exit_code = 0;
  if (report.feeds_quarantined > 0) {
    std::fprintf(stderr,
                 "%zu feed(s) quarantined: their streams were cut off at "
                 "the fault; every other feed published normally\n",
                 report.feeds_quarantined);
    exit_code = 3;
  }
  if (frt::ServiceHadRefusals(report)) {
    std::fprintf(stderr,
                 "budget exhausted on at least one feed: %zu window(s) / "
                 "%zu trajectories refused, %zu evicted; raise the budget "
                 "or lower the per-window epsilons\n",
                 report.windows_refused, report.trajectories_refused,
                 report.trajectories_evicted);
    exit_code = 3;
  }
  return exit_code;
}
