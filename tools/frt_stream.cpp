// frt_stream — long-running windowed trajectory anonymizer.
//
// Consumes the CSV dataset format (traj/io.h) from a file or stdin
// (`--input -`) incrementally, assembles windows of --window trajectories
// (advancing by --stride arrivals; stride < window gives sliding,
// overlapping windows), anonymizes each window with the paper's pipeline
// (sharded, work-stealing execution), and appends each published window to
// the output as soon as it is done. Within a window the guarantee is
// eps_G + eps_L (parallel composition over shards); across windows spends
// compose sequentially under one of two ledgers:
//
//   --budget B            wholesale: all windows' spends sum against B.
//   --per-object-budget B per object-id: each object's own cumulative
//                         spend is capped at B (the paper's per-object
//                         guarantee); add --evict-exhausted to drop just
//                         the exhausted objects instead of whole windows.
//
// Once a window cannot be covered it is refused, not published.
//
//   frt_stream --input raw.csv|- --output published.csv|-
//       [--window 1000] [--stride N] [--budget 0 (unlimited)]
//       [--per-object-budget 0] [--evict-exhausted]
//       [--epsilon-global 0.5] [--epsilon-local 0.5] [--m 10]
//       [--strategy hg+|hgt|hgb|ug|linear] [--order global|local]
//       [--seed 42] [--shards 1] [--threads 0] [--queue 0]
//       [--dispatch steal|static] [--stop-on-exhausted]
//       [--close-after-ms 0] [--state-dir DIR] [--metrics PATH]
//       [--trace-out PATH] [--trace-buffer-events N] [--metrics-histograms]
//       [--admin-listen EP]
//
// With --state-dir the budget ledger is checkpointed durably before every
// published window leaves the process and recovered on the next start
// (PrivacyAccountant::PreloadSpent / ObjectBudgetAccountant::PreloadFloor
// — the conservative carry), so a crash or restart against the same state
// dir never re-grants spent epsilon.
//
// --close-after-ms is the latency SLO for live/trickle feeds: a non-empty
// window is published no later than that many milliseconds after its
// oldest pending arrival, even when the feed has not yet filled --window.
//
// Exit codes: 0 = all windows published; 3 = completed but at least one
// window was refused (or object evicted) on budget; 1 = runtime error;
// 2 = usage error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "cli_common.h"
#include "frt.h"
#include "obs/admin_server.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "service/checkpoint.h"
#include "service/metrics_exporter.h"
#include "stream/ingest.h"
#include "stream/stream_runner.h"

namespace {

struct Args {
  std::string input;
  std::string output;
  frt::cli::StreamArgs stream;
  frt::cli::PipelineArgs pipeline;
  frt::cli::DurabilityArgs durability;
  frt::cli::ObservabilityArgs obs;
};

void Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --input FILE|- --output FILE|- [options]\n"
               "  --input -            read the feed from stdin\n"
               "%s%s%s%s",
               prog, frt::cli::DurabilityUsageText(),
               frt::cli::ObservabilityUsageText(),
               frt::cli::StreamUsageText(), frt::cli::PipelineUsageText());
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    switch (frt::cli::ParsePipelineFlag(argc, argv, &i, &args->pipeline)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseStreamFlag(argc, argv, &i, &args->stream)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (
        frt::cli::ParseDurabilityFlag(argc, argv, &i, &args->durability)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    switch (frt::cli::ParseObservabilityFlag(argc, argv, &i, &args->obs)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--input") == 0) {
      if ((v = next("--input")) == nullptr) return false;
      args->input = v;
    } else if (std::strcmp(argv[i], "--output") == 0) {
      if ((v = next("--output")) == nullptr) return false;
      args->output = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  if (args->input.empty() || args->output.empty()) {
    std::fprintf(stderr, "--input and --output are required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Unsynced iostreams: with C-stdio sync on, cin's streambuf never
  // buffers, which degrades the incremental reader to byte-sized refills.
  std::ios::sync_with_stdio(false);
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  frt::FrequencyRandomizerConfig pipeline_config;
  if (!frt::cli::MakePipelineConfig(args.pipeline, &pipeline_config)) {
    Usage(argv[0]);
    return 2;
  }
  frt::StreamRunnerConfig config;
  if (!frt::cli::MakeStreamConfig(args.stream, args.pipeline, pipeline_config,
                                  &config)) {
    Usage(argv[0]);
    return 2;
  }
  // A bad --admin-listen is a usage error, not a mid-run failure.
  std::optional<frt::net::Endpoint> admin_endpoint;
  if (!args.obs.admin_listen.empty()) {
    auto endpoint = frt::net::ParseEndpoint(args.obs.admin_listen);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "stream: %s\n",
                   endpoint.status().ToString().c_str());
      Usage(argv[0]);
      return 2;
    }
    admin_endpoint = *std::move(endpoint);
  }

  std::ifstream input_file;
  if (args.input != "-") {
    input_file.open(args.input);
    if (!input_file.is_open()) {
      std::fprintf(stderr, "cannot open input: %s\n", args.input.c_str());
      return 1;
    }
  }
  std::istream& in = args.input == "-" ? std::cin : input_file;

  std::ofstream output_file;
  if (args.output != "-") {
    output_file.open(args.output, std::ios::trunc);
    if (!output_file.is_open()) {
      std::fprintf(stderr, "cannot open output: %s\n", args.output.c_str());
      return 1;
    }
  }
  std::ostream& out = args.output == "-" ? std::cout : output_file;

  // ---- Durable budget ledger (single feed entry "stream"). ----
  std::optional<frt::CheckpointStore> store;
  uint64_t checkpoint_seq = 0;
  uint64_t generation = 0;
  uint64_t windows_closed_base = 0;
  size_t checkpoints_written = 0;
  if (!args.durability.state_dir.empty()) {
    auto opened = frt::CheckpointStore::Open(args.durability.state_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "stream: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    store.emplace(*std::move(opened));
    auto loaded = store->Load();
    if (!loaded.ok()) {
      // A corrupt snapshot must fail the start: running without the
      // recovered spend would re-grant budget that was already consumed.
      std::fprintf(stderr, "stream: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (loaded->has_value()) {
      checkpoint_seq = (*loaded)->sequence;
      for (const frt::FeedCheckpoint& feed : (*loaded)->feeds) {
        if (feed.feed != "stream") continue;
        config.preload_wholesale_spent = feed.wholesale_spent;
        config.preload_object_floor = feed.per_object_floor;
        generation = feed.generations;
        windows_closed_base = feed.windows_closed;
      }
      std::fprintf(stderr,
                   "stream: recovered budget state from %s (seq %llu, "
                   "wholesale spent %.6f, per-object floor %.6f)\n",
                   args.durability.state_dir.c_str(),
                   static_cast<unsigned long long>(checkpoint_seq),
                   config.preload_wholesale_spent,
                   config.preload_object_floor);
    }
    ++generation;
  }

  std::unique_ptr<frt::MetricsExporter> metrics;
  if (!args.durability.metrics.empty()) {
    metrics = std::make_unique<frt::MetricsExporter>(
        frt::cli::MakeMetricsOptions(args.durability, args.obs));
    if (auto st = metrics->Start(); !st.ok()) {
      std::fprintf(stderr, "stream: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Arm span tracing before the runner spawns its ingest/pool threads.
  if (!args.obs.trace_out.empty()) {
    frt::obs::TraceRecorder::Options trace_options;
    trace_options.buffer_events =
        static_cast<size_t>(args.obs.trace_buffer_events);
    frt::obs::TraceRecorder::Get().Start(trace_options);
    frt::obs::SetTraceThreadName("stream-runner");
  }

  // ---- Admin plane (--admin-listen): the pre-registered /metrics and
  // /healthz endpoints plus runtime control over tracing and the metrics
  // cadence. Handlers only touch the registry and the exporter's atomic
  // interval — never the runner. ----
  std::unique_ptr<frt::obs::AdminServer> admin;
  if (admin_endpoint.has_value()) {
    frt::obs::AdminServer::Options admin_options;
    admin_options.endpoint = *admin_endpoint;
    admin = std::make_unique<frt::obs::AdminServer>(admin_options);
    frt::obs::ControlHooks hooks;
    hooks.trace_out = args.obs.trace_out;
    hooks.trace_buffer_events =
        static_cast<size_t>(args.obs.trace_buffer_events);
    if (metrics) {
      frt::MetricsExporter* exporter = metrics.get();
      hooks.set_metrics_interval_ms = [exporter](int64_t ms) {
        exporter->SetIntervalMs(ms);
        return true;
      };
    }
    admin->Handle("POST", "/control",
                  frt::obs::MakeControlHandler(std::move(hooks)));
    if (auto st = admin->Start(); !st.ok()) {
      std::fprintf(stderr, "stream: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "stream: admin plane on %s\n",
                 args.obs.admin_listen.c_str());
  }

  frt::TrajectoryReader reader(in);
  frt::StreamRunner runner(config);
  frt::Rng rng(args.pipeline.seed);
  const bool per_object =
      config.accounting == frt::BudgetAccounting::kPerObject;
  const auto run_started = std::chrono::steady_clock::now();
  size_t windows_published_so_far = 0;
  size_t trajectories_published_so_far = 0;

  auto write_checkpoint = [&]() -> frt::Status {
    frt::ServiceCheckpoint image;
    image.sequence = checkpoint_seq + 1;
    image.total_budget = config.total_budget;
    image.per_object_budget = config.per_object_budget;
    frt::FeedCheckpoint feed;
    feed.feed = "stream";
    feed.generations = generation;
    feed.windows_closed = windows_closed_base + windows_published_so_far;
    feed.wholesale_spent = runner.accountant().spent();
    feed.per_object_floor = runner.object_accountant().max_spent();
    image.feeds.push_back(std::move(feed));
    FRT_RETURN_IF_ERROR(store->Write(image));
    checkpoint_seq = image.sequence;
    ++checkpoints_written;
    return frt::Status::OK();
  };

  bool wrote_header = false;
  auto sink = [&](const frt::Dataset& published,
                  const frt::WindowReport& window) -> frt::Status {
    // Write-ahead: ProcessWindow charged the accountants before calling
    // the sink, so a durable snapshot taken NOW covers this window's
    // spend. Only after it persists may the rows leave the process.
    if (store.has_value()) {
      FRT_RETURN_IF_ERROR(write_checkpoint());
    }
    if (!wrote_header) {
      out << "# traj_id,x,y,t\n";
      wrote_header = true;
    }
    for (const auto& t : published.trajectories()) {
      frt::WriteTrajectoryCsv(t, out);
    }
    out.flush();
    if (!out.good()) return frt::Status::IOError("write failed");
    const frt::BatchReport& batch = window.batch;
    std::string evicted_note =
        window.trajectories_evicted > 0
            ? ", " + std::to_string(window.trajectories_evicted) + " evicted"
            : "";
    std::fprintf(stderr,
                 "window %zu: %zu trajs%s, eps=%.2f (%s %.2f%s), %.2fs "
                 "wall, shard wall min/mean/max %.3f/%.3f/%.3f s\n",
                 window.index, window.trajectories, evicted_note.c_str(),
                 window.epsilon_spent,
                 per_object ? "max object" : "ledger", window.epsilon_total,
                 args.stream.budget > 0.0
                     ? (" of " + std::to_string(args.stream.budget)).c_str()
                     : (args.stream.per_object_budget > 0.0
                            ? (" of " +
                               std::to_string(args.stream.per_object_budget))
                                  .c_str()
                            : ""),
                 batch.wall_seconds, batch.shard_wall_min,
                 batch.shard_wall_mean, batch.shard_wall_max);
    frt::cli::PrintAuditReport(batch.audit);
    ++windows_published_so_far;
    trajectories_published_so_far += window.trajectories;
    if (metrics) {
      frt::MetricsSnapshot snapshot;
      snapshot.seq = windows_published_so_far;
      snapshot.uptime_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - run_started)
              .count();
      snapshot.feeds = 1;
      snapshot.active_sessions = 1;
      snapshot.windows_published = windows_published_so_far;
      snapshot.trajectories_published = trajectories_published_so_far;
      snapshot.epsilon_spent_max = window.epsilon_total;
      snapshot.checkpoint_seq = checkpoint_seq;
      snapshot.checkpoints_written = checkpoints_written;
      if (checkpoints_written > 0) snapshot.checkpoint_age_ms = 0.0;
      if (metrics->per_feed()) {
        frt::MetricsSnapshot::Feed detail;
        detail.feed = "stream";
        detail.epsilon_spent = window.epsilon_total;
        const double budget =
            per_object ? config.per_object_budget : config.total_budget;
        detail.epsilon_remaining =
            budget > 0.0 ? std::max(0.0, budget - window.epsilon_total)
                         : std::numeric_limits<double>::infinity();
        detail.windows_published = windows_published_so_far;
        snapshot.feeds_detail.push_back(std::move(detail));
      }
      metrics->Publish(std::move(snapshot));
    }
    return frt::Status::OK();
  };

  frt::Status run_status = runner.Run(reader, sink, rng);
  // Clean-shutdown snapshot: spend recorded after the last publish (or a
  // failed run's partial spend) stays durable.
  if (store.has_value()) {
    if (auto st = write_checkpoint(); !st.ok() && run_status.ok()) {
      run_status = st;
    }
  }
  if (metrics) metrics->Stop();
  if (!args.obs.trace_out.empty()) {
    // Run() joined its producer and pool threads, so the dump is complete.
    const frt::obs::TraceDump dump = frt::obs::TraceRecorder::Get().Stop();
    if (auto st = frt::obs::WriteChromeTrace(dump, args.obs.trace_out);
        !st.ok()) {
      if (run_status.ok()) run_status = st;
    } else {
      std::fprintf(stderr,
                   "trace: wrote %zu span(s) from %zu thread(s) to %s "
                   "(%llu dropped)\n",
                   dump.events.size(), dump.threads.size(),
                   args.obs.trace_out.c_str(),
                   static_cast<unsigned long long>(dump.dropped));
    }
  }
  if (!run_status.ok()) {
    std::fprintf(stderr, "stream: %s\n", run_status.ToString().c_str());
    return 1;
  }
  if (store.has_value()) {
    std::fprintf(stderr,
                 "durability: wrote %zu checkpoint(s) to %s (last seq "
                 "%llu)\n",
                 checkpoints_written, args.durability.state_dir.c_str(),
                 static_cast<unsigned long long>(checkpoint_seq));
  }

  const frt::StreamReport& report = runner.report();
  std::fprintf(stderr,
               "stream done in %.1fs: %zu trajectories in, %zu windows "
               "published (%zu trajs), eps %s %.2f\n",
               report.wall_seconds, report.trajectories_in,
               report.windows_published, report.trajectories_published,
               per_object ? "max object" : "ledger", report.epsilon_spent);
  if (per_object) {
    std::fprintf(stderr,
                 "per-object accounting: max object eps %.2f vs %.2f the "
                 "wholesale ledger would have charged (%zu object(s) "
                 "tracked, %zu evicted from windows)\n",
                 runner.object_accountant().max_spent(),
                 report.epsilon_wholesale_equivalent,
                 runner.object_accountant().tracked_objects(),
                 report.trajectories_evicted);
  }
  if (frt::StreamHadRefusals(report)) {
    std::fprintf(stderr,
                 "budget exhausted: refused %zu window(s) / %zu "
                 "trajectories, evicted %zu trajectorie(s), after spending "
                 "%.2f of %.2f; raise the budget or lower the per-window "
                 "epsilons to cover more of the stream\n",
                 report.windows_refused, report.trajectories_refused,
                 report.trajectories_evicted, report.epsilon_spent,
                 per_object ? args.stream.per_object_budget
                            : args.stream.budget);
    return 3;
  }
  return 0;
}
