// frt_stream — long-running windowed trajectory anonymizer.
//
// Consumes the CSV dataset format (traj/io.h) from a file or stdin
// (`--input -`) incrementally, closes tumbling windows of --window
// trajectories, anonymizes each window with the paper's pipeline (sharded,
// work-stealing execution), and appends each published window to the output
// as soon as it is done. Within a window the guarantee is
// eps_G + eps_L (parallel composition over shards); across windows spends
// compose sequentially against --budget, and once the budget cannot cover
// another window the remaining windows are refused, not published.
//
//   frt_stream --input raw.csv|- --output published.csv|-
//       [--window 1000] [--budget 0 (unlimited)]
//       [--epsilon-global 0.5] [--epsilon-local 0.5] [--m 10]
//       [--strategy hg+|hgt|hgb|ug|linear] [--order global|local]
//       [--seed 42] [--shards 1] [--threads 0] [--queue 0]
//       [--dispatch steal|static]
//
// Exit codes: 0 = all windows published; 3 = completed but at least one
// window was refused on budget; 1 = runtime error; 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_common.h"
#include "frt.h"
#include "stream/ingest.h"
#include "stream/stream_runner.h"

namespace {

struct Args {
  std::string input;
  std::string output;
  size_t window = 1000;
  double budget = 0.0;  // 0 = unlimited
  size_t queue = 0;
  std::string dispatch = "steal";
  bool stop_on_exhausted = false;
  frt::cli::PipelineArgs pipeline;
};

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --input FILE|- --output FILE|- [options]\n"
      "  --input -            read the feed from stdin\n"
      "  --window N           trajectories per tumbling window (default "
      "1000)\n"
      "  --budget X           total cross-window epsilon budget; windows "
      "compose\n"
      "                       sequentially and are refused once it is "
      "exhausted\n"
      "                       (default 0 = track only, never refuse)\n"
      "  --queue N            ingest queue capacity in trajectories "
      "(default 2*window)\n"
      "  --dispatch D         shard dispatch: steal | static (default "
      "steal)\n"
      "  --stop-on-exhausted  end the run at the first refused window "
      "(required\n"
      "                       for --budget on a feed that never ends)\n"
      "%s",
      prog, frt::cli::PipelineUsageText());
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    switch (frt::cli::ParsePipelineFlag(argc, argv, &i, &args->pipeline)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--input") == 0) {
      if ((v = next("--input")) == nullptr) return false;
      args->input = v;
    } else if (std::strcmp(argv[i], "--output") == 0) {
      if ((v = next("--output")) == nullptr) return false;
      args->output = v;
    } else if (std::strcmp(argv[i], "--window") == 0) {
      if ((v = next("--window")) == nullptr) return false;
      const long long n = std::atoll(v);
      if (n < 1) {
        std::fprintf(stderr, "--window must be >= 1\n");
        return false;
      }
      args->window = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      if ((v = next("--budget")) == nullptr) return false;
      args->budget = std::atof(v);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      if ((v = next("--queue")) == nullptr) return false;
      args->queue = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--dispatch") == 0) {
      if ((v = next("--dispatch")) == nullptr) return false;
      args->dispatch = v;
    } else if (std::strcmp(argv[i], "--stop-on-exhausted") == 0) {
      args->stop_on_exhausted = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  if (args->input.empty() || args->output.empty()) {
    std::fprintf(stderr, "--input and --output are required\n");
    return false;
  }
  if (args->dispatch != "steal" && args->dispatch != "static") {
    std::fprintf(stderr, "--dispatch must be steal or static\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Unsynced iostreams: with C-stdio sync on, cin's streambuf never
  // buffers, which degrades the incremental reader to byte-sized refills.
  std::ios::sync_with_stdio(false);
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  frt::StreamRunnerConfig config;
  config.window_size = args.window;
  config.total_budget = args.budget;
  config.queue_capacity = args.queue;
  config.stop_when_exhausted = args.stop_on_exhausted;
  config.batch.shards = args.pipeline.shards;
  config.batch.threads = args.pipeline.threads;
  config.batch.dispatch = args.dispatch == "static"
                              ? frt::ShardDispatch::kStatic
                              : frt::ShardDispatch::kWorkStealing;
  if (!frt::cli::MakePipelineConfig(args.pipeline, &config.batch.pipeline)) {
    Usage(argv[0]);
    return 2;
  }

  std::ifstream input_file;
  if (args.input != "-") {
    input_file.open(args.input);
    if (!input_file.is_open()) {
      std::fprintf(stderr, "cannot open input: %s\n", args.input.c_str());
      return 1;
    }
  }
  std::istream& in = args.input == "-" ? std::cin : input_file;

  std::ofstream output_file;
  if (args.output != "-") {
    output_file.open(args.output, std::ios::trunc);
    if (!output_file.is_open()) {
      std::fprintf(stderr, "cannot open output: %s\n", args.output.c_str());
      return 1;
    }
  }
  std::ostream& out = args.output == "-" ? std::cout : output_file;

  frt::TrajectoryReader reader(in);
  frt::StreamRunner runner(config);
  frt::Rng rng(args.pipeline.seed);

  bool wrote_header = false;
  auto sink = [&](const frt::Dataset& published,
                  const frt::WindowReport& window) -> frt::Status {
    if (!wrote_header) {
      out << "# traj_id,x,y,t\n";
      wrote_header = true;
    }
    for (const auto& t : published.trajectories()) {
      frt::WriteTrajectoryCsv(t, out);
    }
    out.flush();
    if (!out.good()) return frt::Status::IOError("write failed");
    const frt::BatchReport& batch = window.batch;
    std::fprintf(stderr,
                 "window %zu: %zu trajs, eps=%.2f (ledger %.2f%s), %.2fs "
                 "wall, shard wall min/mean/max %.3f/%.3f/%.3f s\n",
                 window.index, window.trajectories, window.epsilon_spent,
                 window.epsilon_total,
                 args.budget > 0.0
                     ? (" of " + std::to_string(args.budget)).c_str()
                     : "",
                 batch.wall_seconds, batch.shard_wall_min,
                 batch.shard_wall_mean, batch.shard_wall_max);
    return frt::Status::OK();
  };

  if (auto st = runner.Run(reader, sink, rng); !st.ok()) {
    std::fprintf(stderr, "stream: %s\n", st.ToString().c_str());
    return 1;
  }

  const frt::StreamReport& report = runner.report();
  std::fprintf(stderr,
               "stream done in %.1fs: %zu trajectories in, %zu windows "
               "published (%zu trajs), eps ledger %.2f\n",
               report.wall_seconds, report.trajectories_in,
               report.windows_published, report.trajectories_published,
               report.epsilon_spent);
  if (report.windows_refused > 0) {
    std::fprintf(stderr,
                 "budget exhausted: refused %zu window(s) / %zu "
                 "trajectories after spending %.2f of %.2f; raise --budget "
                 "or lower the per-window epsilons to cover more of the "
                 "stream\n",
                 report.windows_refused, report.trajectories_refused,
                 report.epsilon_spent, args.budget);
    return 3;
  }
  return 0;
}
