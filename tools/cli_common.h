// Helpers shared by the FRT command-line tools: the pipeline flags common
// to every anonymizing CLI are parsed, validated, and documented here once,
// so the tools cannot drift apart as flags are added.

#ifndef FRT_TOOLS_CLI_COMMON_H_
#define FRT_TOOLS_CLI_COMMON_H_

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/strings.h"
#include "core/pipeline.h"
#include "service/metrics_exporter.h"
#include "stream/stream_runner.h"

namespace frt::cli {

// ---- Strict numeric flag values ----
//
// atof/atoi map a malformed value ("oops", "1.5x", "") to 0 silently — a
// zero budget then refuses every window with no diagnostic pointing at the
// typo. Every numeric flag instead parses strictly: the whole value must
// be a number, trailing garbage and empty strings are usage errors that
// name the offending flag, and the tool exits non-zero.

/// \brief Parses `value` as a double for `flag`. Reports and returns false
/// on anything but a complete, finite-syntax number.
inline bool ParseFlagDouble(const char* flag, const char* value,
                            double* out) {
  Result<double> parsed = ParseDouble(value);
  if (!parsed.ok()) {
    std::fprintf(stderr, "invalid numeric value '%s' for %s\n", value, flag);
    return false;
  }
  *out = *parsed;
  return true;
}

/// \brief Parses `value` as a signed integer for `flag` (strict; see
/// above).
inline bool ParseFlagInt64(const char* flag, const char* value,
                           int64_t* out) {
  const char* end = value + std::strlen(value);
  int64_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec != std::errc() || ptr != end || value == end) {
    std::fprintf(stderr, "invalid integer value '%s' for %s\n", value, flag);
    return false;
  }
  *out = parsed;
  return true;
}

/// \brief Parses `value` as an unsigned integer for `flag` (strict; a
/// leading '-' is rejected, not wrapped).
inline bool ParseFlagUint64(const char* flag, const char* value,
                            uint64_t* out) {
  const char* end = value + std::strlen(value);
  uint64_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec != std::errc() || ptr != end || value == end) {
    std::fprintf(stderr, "invalid integer value '%s' for %s\n", value, flag);
    return false;
  }
  *out = parsed;
  return true;
}

/// Maps the --strategy flag spelling to a SearchStrategy. The single
/// source of the ladder: every tool that grows a strategy flag uses this,
/// so a new strategy becomes selectable everywhere at once.
inline bool ParseStrategy(const std::string& s, SearchStrategy* out) {
  if (s == "hg+") {
    *out = SearchStrategy::kBottomUpDown;
  } else if (s == "hgt") {
    *out = SearchStrategy::kTopDown;
  } else if (s == "hgb") {
    *out = SearchStrategy::kBottomUp;
  } else if (s == "ug") {
    *out = SearchStrategy::kUniformGrid;
  } else if (s == "linear") {
    *out = SearchStrategy::kLinear;
  } else {
    return false;
  }
  return true;
}

/// Raw values of the flags shared by all anonymizing tools.
struct PipelineArgs {
  double epsilon_global = 0.5;
  double epsilon_local = 0.5;
  int m = 10;
  std::string strategy = "hg+";
  std::string order = "global";
  uint64_t seed = 42;
  int shards = 1;
  unsigned threads = 0;
  /// One window-audit index shared by all workers (concurrent read-only
  /// searches) vs a private rebuild per worker range. Output is
  /// bit-identical either way; --no-shared-index exists for A/B timing.
  bool shared_index = true;
};

/// Outcome of offering one argv slot to the shared parser.
enum class FlagParse {
  kConsumed,  ///< it was a shared flag; *i advanced past its value
  kNotMine,   ///< not a shared flag; the tool should try its own flags
  kError,     ///< a shared flag with a missing/invalid value (reported)
};

/// \brief Tries to consume argv[*i] as one of the shared pipeline flags.
inline FlagParse ParsePipelineFlag(int argc, char** argv, int* i,
                                   PipelineArgs* args) {
  const char* flag = argv[*i];
  auto next = [&]() -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      return nullptr;
    }
    return argv[++*i];
  };
  const char* v = nullptr;
  if (std::strcmp(flag, "--epsilon-global") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    if (!ParseFlagDouble(flag, v, &args->epsilon_global)) {
      return FlagParse::kError;
    }
  } else if (std::strcmp(flag, "--epsilon-local") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    if (!ParseFlagDouble(flag, v, &args->epsilon_local)) {
      return FlagParse::kError;
    }
  } else if (std::strcmp(flag, "--m") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    int64_t m = 0;
    if (!ParseFlagInt64(flag, v, &m)) return FlagParse::kError;
    if (m < 1 || m > std::numeric_limits<int>::max()) {
      std::fprintf(stderr, "--m must be a positive int\n");
      return FlagParse::kError;
    }
    args->m = static_cast<int>(m);
  } else if (std::strcmp(flag, "--strategy") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->strategy = v;
  } else if (std::strcmp(flag, "--order") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->order = v;
  } else if (std::strcmp(flag, "--seed") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    if (!ParseFlagUint64(flag, v, &args->seed)) return FlagParse::kError;
  } else if (std::strcmp(flag, "--shards") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    int64_t shards = 0;
    if (!ParseFlagInt64(flag, v, &shards)) return FlagParse::kError;
    if (shards < 1 || shards > std::numeric_limits<int>::max()) {
      std::fprintf(stderr, "--shards must be >= 1\n");
      return FlagParse::kError;
    }
    args->shards = static_cast<int>(shards);
  } else if (std::strcmp(flag, "--threads") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    uint64_t threads = 0;
    if (!ParseFlagUint64(flag, v, &threads)) return FlagParse::kError;
    if (threads > std::numeric_limits<unsigned>::max()) {
      std::fprintf(stderr, "--threads value out of range\n");
      return FlagParse::kError;
    }
    args->threads = static_cast<unsigned>(threads);
  } else if (std::strcmp(flag, "--shared-index") == 0) {
    args->shared_index = true;
  } else if (std::strcmp(flag, "--no-shared-index") == 0) {
    args->shared_index = false;
  } else {
    return FlagParse::kNotMine;
  }
  return FlagParse::kConsumed;
}

/// \brief Validates the shared flags and fills a pipeline config.
/// Reports to stderr and returns false on invalid combinations.
inline bool MakePipelineConfig(const PipelineArgs& args,
                               FrequencyRandomizerConfig* config) {
  config->m = args.m;
  config->epsilon_global = args.epsilon_global;
  config->epsilon_local = args.epsilon_local;
  config->order = args.order == "local" ? MechanismOrder::kLocalFirst
                                        : MechanismOrder::kGlobalFirst;
  if (!ParseStrategy(args.strategy, &config->strategy)) {
    std::fprintf(stderr, "unknown strategy '%s'\n", args.strategy.c_str());
    return false;
  }
  if (config->epsilon_global <= 0.0 && config->epsilon_local <= 0.0) {
    std::fprintf(stderr, "at least one epsilon must be positive\n");
    return false;
  }
  return true;
}

/// Usage text of the shared flags (embed in each tool's Usage()).
inline const char* PipelineUsageText() {
  return
      "  --epsilon-global X   budget of the global TF mechanism (default "
      "0.5; 0 disables)\n"
      "  --epsilon-local X    budget of the local PF mechanism (default "
      "0.5; 0 disables)\n"
      "  --m N                signature size (default 10)\n"
      "  --strategy S         kNN strategy: hg+ hgt hgb ug linear "
      "(default hg+)\n"
      "  --order O            mechanism order: global | local first "
      "(default global)\n"
      "  --seed N             RNG seed (default 42)\n"
      "  --shards K           dataset partitions anonymized independently "
      "(default 1)\n"
      "  --threads N          worker threads; 0 = hardware concurrency "
      "(default 0)\n"
      "  --shared-index       window audit shares one segment index "
      "across all\n"
      "                       workers via concurrent read-only searches "
      "(default)\n"
      "  --no-shared-index    window audit rebuilds a private index per "
      "worker\n"
      "                       range (A/B baseline; same output, more "
      "build work)\n";
}

// ---- Streaming flags (frt_stream; shared here so future streaming tools
// cannot drift from the same windowing/budget vocabulary) ----

/// Raw values of the streaming-service flags.
struct StreamArgs {
  size_t window = 1000;
  size_t stride = 0;  ///< 0 = tumbling (stride == window)
  double budget = 0.0;             ///< wholesale ledger; 0 = track only
  double per_object_budget = 0.0;  ///< per-object ledgers; 0 = off
  bool evict_exhausted = false;
  size_t queue = 0;
  std::string dispatch = "steal";
  bool stop_on_exhausted = false;
  int64_t close_after_ms = 0;  ///< time-based window closure; 0 = off
};

/// \brief Tries to consume argv[*i] as one of the streaming flags.
inline FlagParse ParseStreamFlag(int argc, char** argv, int* i,
                                 StreamArgs* args) {
  const char* flag = argv[*i];
  auto next = [&]() -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      return nullptr;
    }
    return argv[++*i];
  };
  const char* v = nullptr;
  if (std::strcmp(flag, "--window") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    int64_t n = 0;
    if (!ParseFlagInt64(flag, v, &n)) return FlagParse::kError;
    if (n < 1) {
      std::fprintf(stderr, "--window must be >= 1\n");
      return FlagParse::kError;
    }
    args->window = static_cast<size_t>(n);
  } else if (std::strcmp(flag, "--stride") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    int64_t n = 0;
    if (!ParseFlagInt64(flag, v, &n)) return FlagParse::kError;
    if (n < 1) {
      std::fprintf(stderr, "--stride must be >= 1\n");
      return FlagParse::kError;
    }
    args->stride = static_cast<size_t>(n);
  } else if (std::strcmp(flag, "--budget") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    if (!ParseFlagDouble(flag, v, &args->budget)) return FlagParse::kError;
  } else if (std::strcmp(flag, "--per-object-budget") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    if (!ParseFlagDouble(flag, v, &args->per_object_budget)) {
      return FlagParse::kError;
    }
  } else if (std::strcmp(flag, "--evict-exhausted") == 0) {
    args->evict_exhausted = true;
  } else if (std::strcmp(flag, "--queue") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    uint64_t n = 0;
    if (!ParseFlagUint64(flag, v, &n)) return FlagParse::kError;
    args->queue = static_cast<size_t>(n);
  } else if (std::strcmp(flag, "--dispatch") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->dispatch = v;
  } else if (std::strcmp(flag, "--stop-on-exhausted") == 0) {
    args->stop_on_exhausted = true;
  } else if (std::strcmp(flag, "--close-after-ms") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    int64_t n = 0;
    if (!ParseFlagInt64(flag, v, &n)) return FlagParse::kError;
    if (n < 0) {
      std::fprintf(stderr, "--close-after-ms must be >= 0\n");
      return FlagParse::kError;
    }
    args->close_after_ms = n;
  } else {
    return FlagParse::kNotMine;
  }
  return FlagParse::kConsumed;
}

/// \brief Validates the streaming flags (with an already-validated pipeline
/// config) and fills the StreamRunner config. Reports to stderr and returns
/// false on invalid combinations.
inline bool MakeStreamConfig(const StreamArgs& args,
                             const PipelineArgs& pipeline_args,
                             const FrequencyRandomizerConfig& pipeline,
                             StreamRunnerConfig* config) {
  if (args.stride > args.window) {
    std::fprintf(stderr, "--stride (%zu) must be <= --window (%zu)\n",
                 args.stride, args.window);
    return false;
  }
  if (args.budget > 0.0 && args.per_object_budget > 0.0) {
    std::fprintf(stderr,
                 "--budget and --per-object-budget select different "
                 "accountants; pass at most one\n");
    return false;
  }
  if (args.evict_exhausted && args.per_object_budget <= 0.0) {
    std::fprintf(stderr,
                 "--evict-exhausted requires --per-object-budget (only the "
                 "per-object ledger can refuse a single object)\n");
    return false;
  }
  if (args.dispatch != "steal" && args.dispatch != "static") {
    std::fprintf(stderr, "--dispatch must be steal or static\n");
    return false;
  }
  config->window_size = args.window;
  config->window_stride = args.stride;
  config->total_budget = args.budget;
  config->per_object_budget = args.per_object_budget;
  config->accounting = args.per_object_budget > 0.0
                           ? BudgetAccounting::kPerObject
                           : BudgetAccounting::kWholesale;
  config->evict_exhausted = args.evict_exhausted;
  config->queue_capacity = args.queue;
  config->stop_when_exhausted = args.stop_on_exhausted;
  config->close_after_ms = args.close_after_ms;
  config->batch.pipeline = pipeline;
  config->batch.shards = pipeline_args.shards;
  config->batch.threads = pipeline_args.threads;
  config->batch.dispatch = args.dispatch == "static"
                               ? ShardDispatch::kStatic
                               : ShardDispatch::kWorkStealing;
  config->batch.audit.enabled = true;
  config->batch.audit.shared_index = pipeline_args.shared_index;
  config->batch.audit.strategy = pipeline.strategy;
  config->batch.audit.index_levels = pipeline.index_levels;
  return true;
}

/// One-line per-run summary of a window audit, for the tools' stderr
/// reports ("displacement" = published point to nearest original segment).
inline void PrintAuditReport(const WindowAuditReport& audit) {
  if (!audit.ran) return;
  std::fprintf(stderr,
               "audit: shared-index=%s builds=%d build=%.3fs points=%llu "
               "displacement mean/max %.3f/%.3f\n",
               audit.shared_index ? "on" : "off", audit.index_builds,
               audit.build_seconds,
               static_cast<unsigned long long>(audit.points_audited),
               audit.mean_displacement, audit.max_displacement);
}

/// Usage text of the streaming flags (embed in each tool's Usage()).
inline const char* StreamUsageText() {
  return
      "  --window N           trajectories per window (default 1000)\n"
      "  --stride N           arrivals between window starts; N < window "
      "gives\n"
      "                       sliding (overlapping) windows (default: "
      "window,\n"
      "                       i.e. tumbling)\n"
      "  --budget X           wholesale epsilon budget: every window's "
      "spend\n"
      "                       sums against it (default 0 = track only)\n"
      "  --per-object-budget X\n"
      "                       per-object epsilon budget: each object-id's "
      "own\n"
      "                       cumulative spend is capped (the paper's "
      "per-object\n"
      "                       guarantee; excludes --budget)\n"
      "  --evict-exhausted    with --per-object-budget: evict exhausted "
      "objects\n"
      "                       from a window instead of refusing the whole "
      "window\n"
      "  --queue N            ingest queue capacity in trajectories "
      "(default 2*window)\n"
      "  --dispatch D         shard dispatch: steal | static (default "
      "steal)\n"
      "  --stop-on-exhausted  end the run at the first refused window "
      "(required\n"
      "                       for --budget on a feed that never ends)\n"
      "  --close-after-ms N   wall-clock closure SLO: publish a non-empty "
      "window\n"
      "                       no later than N ms after its oldest pending\n"
      "                       arrival, even if short of --window (default "
      "0 = off)\n";
}

// ---- Durability & metrics flags (frt_serve, frt_stream) ----

/// Raw values of the shared durability/metrics flags.
struct DurabilityArgs {
  /// Budget-ledger checkpoint directory; empty = checkpointing off.
  std::string state_dir;
  int64_t checkpoint_interval_ms = 1000;
  /// Metrics output: a file path or "-" for stderr; empty = metrics off.
  std::string metrics;
  int64_t metrics_interval_ms = 1000;
  bool metrics_per_feed = false;
};

/// \brief Tries to consume argv[*i] as one of the durability/metrics
/// flags.
inline FlagParse ParseDurabilityFlag(int argc, char** argv, int* i,
                                     DurabilityArgs* args) {
  const char* flag = argv[*i];
  auto next = [&]() -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      return nullptr;
    }
    return argv[++*i];
  };
  const char* v = nullptr;
  if (std::strcmp(flag, "--state-dir") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->state_dir = v;
  } else if (std::strcmp(flag, "--checkpoint-interval-ms") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    int64_t n = 0;
    if (!ParseFlagInt64(flag, v, &n)) return FlagParse::kError;
    if (n < 1) {
      std::fprintf(stderr, "--checkpoint-interval-ms must be >= 1\n");
      return FlagParse::kError;
    }
    args->checkpoint_interval_ms = n;
  } else if (std::strcmp(flag, "--metrics") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->metrics = v;
  } else if (std::strcmp(flag, "--metrics-interval-ms") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    int64_t n = 0;
    if (!ParseFlagInt64(flag, v, &n)) return FlagParse::kError;
    if (n < 1) {
      std::fprintf(stderr, "--metrics-interval-ms must be >= 1\n");
      return FlagParse::kError;
    }
    args->metrics_interval_ms = n;
  } else if (std::strcmp(flag, "--metrics-per-feed") == 0) {
    args->metrics_per_feed = true;
  } else {
    return FlagParse::kNotMine;
  }
  return FlagParse::kConsumed;
}

/// Usage text of the durability/metrics flags.
inline const char* DurabilityUsageText() {
  return
      "  --state-dir DIR      durable budget ledgers: checkpoint per-feed "
      "spend\n"
      "                       into DIR (write-ahead of every publish) and "
      "recover\n"
      "                       it on startup, so a restart never re-grants "
      "spent\n"
      "                       epsilon (default: off)\n"
      "  --checkpoint-interval-ms N\n"
      "                       cadence for interval snapshots of ledger "
      "changes\n"
      "                       with no publish to ride on (default 1000)\n"
      "  --metrics PATH       append one machine-readable frt_metrics line "
      "per\n"
      "                       interval to PATH, or - for stderr (default: "
      "off)\n"
      "  --metrics-interval-ms N\n"
      "                       metrics emission interval (default 1000)\n"
      "  --metrics-per-feed   also emit one frt_feed line per feed per "
      "interval\n";
}

// ---- Observability flags (frt_serve, frt_stream) ----

/// Raw values of the shared observability flags.
struct ObservabilityArgs {
  /// Span trace output: a Chrome trace-event JSON path, or "-" for stdout;
  /// empty = tracing off.
  std::string trace_out;
  /// Per-thread trace ring capacity in events; on overflow the oldest
  /// events are overwritten and counted as dropped.
  uint64_t trace_buffer_events = uint64_t{1} << 16;
  /// Emit per-stage frt_stage histogram lines with --metrics.
  bool metrics_histograms = false;
  /// Admin/introspection endpoint ("unix:PATH" or "tcp:HOST:PORT");
  /// empty = no admin plane.
  std::string admin_listen;
};

/// \brief Tries to consume argv[*i] as one of the observability flags.
inline FlagParse ParseObservabilityFlag(int argc, char** argv, int* i,
                                        ObservabilityArgs* args) {
  const char* flag = argv[*i];
  auto next = [&]() -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      return nullptr;
    }
    return argv[++*i];
  };
  const char* v = nullptr;
  if (std::strcmp(flag, "--trace-out") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->trace_out = v;
  } else if (std::strcmp(flag, "--trace-buffer-events") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    uint64_t n = 0;
    if (!ParseFlagUint64(flag, v, &n)) return FlagParse::kError;
    if (n < 1) {
      std::fprintf(stderr, "--trace-buffer-events must be >= 1\n");
      return FlagParse::kError;
    }
    args->trace_buffer_events = n;
  } else if (std::strcmp(flag, "--metrics-histograms") == 0) {
    args->metrics_histograms = true;
  } else if (std::strcmp(flag, "--admin-listen") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->admin_listen = v;
  } else {
    return FlagParse::kNotMine;
  }
  return FlagParse::kConsumed;
}

/// Exporter options from the parsed flags (only meaningful when
/// args.metrics is non-empty).
inline MetricsExporter::Options MakeMetricsOptions(
    const DurabilityArgs& args, const ObservabilityArgs& obs_args = {}) {
  MetricsExporter::Options options;
  options.path = args.metrics;
  options.interval_ms = args.metrics_interval_ms;
  options.per_feed = args.metrics_per_feed;
  options.histograms = obs_args.metrics_histograms;
  return options;
}

/// Usage text of the observability flags.
inline const char* ObservabilityUsageText() {
  return
      "  --trace-out PATH     record spans for the whole run and write one "
      "Chrome\n"
      "                       trace-event JSON file on exit (load in\n"
      "                       chrome://tracing or Perfetto); - for stdout\n"
      "                       (default: off)\n"
      "  --trace-buffer-events N\n"
      "                       per-thread trace ring capacity; overflow "
      "overwrites\n"
      "                       the oldest events and reports them as dropped\n"
      "                       (default 65536)\n"
      "  --metrics-histograms with --metrics: also emit one frt_stage "
      "latency\n"
      "                       histogram line per stage per interval\n"
      "  --admin-listen EP    serve the introspection plane on EP "
      "(unix:PATH or\n"
      "                       tcp:HOST:PORT): GET /metrics /healthz /readyz "
      "/feedz,\n"
      "                       POST /control (default: off)\n";
}

// ---- Transport flags (frt_serve --listen, frt_edge --connect) ----

/// Raw values of the network-transport flags shared by the ingress tier.
struct TransportArgs {
  /// Listen endpoint ("unix:PATH" or "tcp:HOST:PORT"); empty = no network
  /// ingress.
  std::string listen;
  /// Upstream endpoint an edge forwards to; empty = local output only.
  std::string connect;
  /// With --listen: stop after this many edge connections have drained
  /// (0 = serve until interrupted).
  uint64_t listen_conns = 0;
};

/// \brief Tries to consume argv[*i] as one of the transport flags.
inline FlagParse ParseTransportFlag(int argc, char** argv, int* i,
                                    TransportArgs* args) {
  const char* flag = argv[*i];
  auto next = [&]() -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      return nullptr;
    }
    return argv[++*i];
  };
  const char* v = nullptr;
  if (std::strcmp(flag, "--listen") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->listen = v;
  } else if (std::strcmp(flag, "--connect") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    args->connect = v;
  } else if (std::strcmp(flag, "--listen-conns") == 0) {
    if ((v = next()) == nullptr) return FlagParse::kError;
    if (!ParseFlagUint64(flag, v, &args->listen_conns)) {
      return FlagParse::kError;
    }
  } else {
    return FlagParse::kNotMine;
  }
  return FlagParse::kConsumed;
}

/// Usage text of the transport flags.
inline const char* TransportUsageText() {
  return
      "  --listen EP          accept framed edge connections on EP\n"
      "                       (unix:PATH or tcp:HOST:PORT) instead of "
      "reading\n"
      "                       a local file (default: off)\n"
      "  --listen-conns N     with --listen: finish after N edge "
      "connections\n"
      "                       have drained (default 0 = until SIGINT)\n"
      "  --connect EP         forward anonymized windows upstream to the\n"
      "                       aggregator at EP instead of writing locally\n";
}

}  // namespace frt::cli

#endif  // FRT_TOOLS_CLI_COMMON_H_
