// frt_anonymize — command-line trajectory anonymizer.
//
// Reads a CSV trajectory dataset (traj_id,x,y,t per line; see traj/io.h),
// applies the paper's frequency-based randomization, and writes the
// published dataset. The variant is selected by the budget flags: set one
// of them to 0 for PureG / PureL, both positive for GL.
//
//   frt_anonymize --input raw.csv --output published.csv
//       [--epsilon-global 0.5] [--epsilon-local 0.5] [--m 10]
//       [--strategy hg+|hgt|hgb|ug|linear] [--order global|local]
//       [--seed 42] [--shards 1] [--threads 0]
//
// With --shards K > 1 the dataset is partitioned and each shard is
// anonymized independently (BatchRunner); parallel composition keeps the
// privacy guarantee identical to the single-shot run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "frt.h"

namespace {

struct Args {
  std::string input;
  std::string output;
  double epsilon_global = 0.5;
  double epsilon_local = 0.5;
  int m = 10;
  std::string strategy = "hg+";
  std::string order = "global";
  uint64_t seed = 42;
  int shards = 1;
  unsigned threads = 0;
};

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --input FILE --output FILE [options]\n"
      "  --epsilon-global X   budget of the global TF mechanism (default "
      "0.5; 0 disables)\n"
      "  --epsilon-local X    budget of the local PF mechanism (default "
      "0.5; 0 disables)\n"
      "  --m N                signature size (default 10)\n"
      "  --strategy S         kNN strategy: hg+ hgt hgb ug linear "
      "(default hg+)\n"
      "  --order O            mechanism order: global | local first "
      "(default global)\n"
      "  --seed N             RNG seed (default 42)\n"
      "  --shards K           dataset partitions anonymized independently "
      "(default 1)\n"
      "  --threads N          worker threads for shard execution; 0 = "
      "hardware concurrency (default 0)\n",
      prog);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--input") == 0) {
      const char* v = next("--input");
      if (v == nullptr) return false;
      args->input = v;
    } else if (std::strcmp(argv[i], "--output") == 0) {
      const char* v = next("--output");
      if (v == nullptr) return false;
      args->output = v;
    } else if (std::strcmp(argv[i], "--epsilon-global") == 0) {
      const char* v = next("--epsilon-global");
      if (v == nullptr) return false;
      args->epsilon_global = std::atof(v);
    } else if (std::strcmp(argv[i], "--epsilon-local") == 0) {
      const char* v = next("--epsilon-local");
      if (v == nullptr) return false;
      args->epsilon_local = std::atof(v);
    } else if (std::strcmp(argv[i], "--m") == 0) {
      const char* v = next("--m");
      if (v == nullptr) return false;
      args->m = std::atoi(v);
    } else if (std::strcmp(argv[i], "--strategy") == 0) {
      const char* v = next("--strategy");
      if (v == nullptr) return false;
      args->strategy = v;
    } else if (std::strcmp(argv[i], "--order") == 0) {
      const char* v = next("--order");
      if (v == nullptr) return false;
      args->order = v;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = next("--shards");
      if (v == nullptr) return false;
      args->shards = std::atoi(v);
      if (args->shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      args->threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  if (args->input.empty() || args->output.empty()) {
    std::fprintf(stderr, "--input and --output are required\n");
    return false;
  }
  return true;
}

bool ParseStrategy(const std::string& s, frt::SearchStrategy* out) {
  if (s == "hg+") {
    *out = frt::SearchStrategy::kBottomUpDown;
  } else if (s == "hgt") {
    *out = frt::SearchStrategy::kTopDown;
  } else if (s == "hgb") {
    *out = frt::SearchStrategy::kBottomUp;
  } else if (s == "ug") {
    *out = frt::SearchStrategy::kUniformGrid;
  } else if (s == "linear") {
    *out = frt::SearchStrategy::kLinear;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  frt::FrequencyRandomizerConfig config;
  config.m = args.m;
  config.epsilon_global = args.epsilon_global;
  config.epsilon_local = args.epsilon_local;
  config.order = args.order == "local" ? frt::MechanismOrder::kLocalFirst
                                       : frt::MechanismOrder::kGlobalFirst;
  if (!ParseStrategy(args.strategy, &config.strategy)) {
    std::fprintf(stderr, "unknown strategy '%s'\n", args.strategy.c_str());
    Usage(argv[0]);
    return 2;
  }
  if (config.epsilon_global <= 0.0 && config.epsilon_local <= 0.0) {
    std::fprintf(stderr, "at least one epsilon must be positive\n");
    return 2;
  }

  auto dataset = frt::LoadDatasetCsv(args.input);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu trajectories, %zu points\n",
               dataset->size(), dataset->TotalPoints());

  frt::Rng rng(args.seed);
  frt::Stopwatch watch;
  frt::Result<frt::Dataset> published =
      frt::Status::Internal("not executed");
  std::string method_name;
  frt::RandomizerReport report;
  if (args.shards > 1) {
    frt::BatchRunnerConfig batch_config;
    batch_config.pipeline = config;
    batch_config.shards = args.shards;
    batch_config.threads = args.threads;
    frt::BatchRunner runner(batch_config);
    method_name = runner.name();
    published = runner.Anonymize(*dataset, rng);
    if (published.ok()) {
      report = runner.report().combined;
      std::fprintf(stderr, "batch: %d shards, eps=%.2f via parallel "
                   "composition\n",
                   runner.report().shards_run,
                   runner.report().epsilon_spent);
    }
  } else {
    if (args.threads != 0) {
      std::fprintf(stderr,
                   "note: --threads has no effect without --shards > 1\n");
    }
    frt::FrequencyRandomizer randomizer(config);
    method_name = randomizer.name();
    published = randomizer.Anonymize(*dataset, rng);
    if (published.ok()) report = randomizer.report();
  }
  if (!published.ok()) {
    std::fprintf(stderr, "anonymize: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "%s done in %.1fs: eps=%.2f, |P|=%zu, local edits %zu+/%zu-, "
               "global edits %zu+/%zu-, points %zu -> %zu\n",
               method_name.c_str(), watch.ElapsedSeconds(),
               report.epsilon_spent, report.candidate_set_size,
               report.local.edits.insertions, report.local.edits.deletions,
               report.global.edits.insertions,
               report.global.edits.deletions, dataset->TotalPoints(),
               published->TotalPoints());

  if (auto st = frt::SaveDatasetCsv(*published, args.output); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", args.output.c_str());
  return 0;
}
