// frt_anonymize — command-line trajectory anonymizer.
//
// Reads a CSV trajectory dataset (traj_id,x,y,t per line; see traj/io.h),
// applies the paper's frequency-based randomization, and writes the
// published dataset. The variant is selected by the budget flags: set one
// of them to 0 for PureG / PureL, both positive for GL. `--input -` reads
// the dataset from stdin via the incremental reader, so the tool can sit
// at the end of a shell pipeline.
//
//   frt_anonymize --input raw.csv|- --output published.csv
//       [--epsilon-global 0.5] [--epsilon-local 0.5] [--m 10]
//       [--strategy hg+|hgt|hgb|ug|linear] [--order global|local]
//       [--seed 42] [--shards 1] [--threads 0]
//
// With --shards K > 1 the dataset is partitioned and each shard is
// anonymized independently (BatchRunner); parallel composition keeps the
// privacy guarantee identical to the single-shot run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cli_common.h"
#include "frt.h"
#include "stream/ingest.h"

namespace {

struct Args {
  std::string input;
  std::string output;
  frt::cli::PipelineArgs pipeline;
};

void Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --input FILE|- --output FILE [options]\n"
               "  --input -            read the dataset from stdin\n"
               "%s",
               prog, frt::cli::PipelineUsageText());
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    switch (frt::cli::ParsePipelineFlag(argc, argv, &i, &args->pipeline)) {
      case frt::cli::FlagParse::kConsumed:
        continue;
      case frt::cli::FlagParse::kError:
        return false;
      case frt::cli::FlagParse::kNotMine:
        break;
    }
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--input") == 0) {
      const char* v = next("--input");
      if (v == nullptr) return false;
      args->input = v;
    } else if (std::strcmp(argv[i], "--output") == 0) {
      const char* v = next("--output");
      if (v == nullptr) return false;
      args->output = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  if (args->input.empty() || args->output.empty()) {
    std::fprintf(stderr, "--input and --output are required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Unsynced iostreams: with C-stdio sync on, cin's streambuf never
  // buffers, which degrades the incremental reader to byte-sized refills.
  std::ios::sync_with_stdio(false);
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  frt::FrequencyRandomizerConfig config;
  if (!frt::cli::MakePipelineConfig(args.pipeline, &config)) {
    Usage(argv[0]);
    return 2;
  }

  auto dataset = args.input == "-"
                     ? frt::ReadDatasetFromStream(std::cin)
                     : frt::LoadDatasetCsv(args.input);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu trajectories, %zu points\n",
               dataset->size(), dataset->TotalPoints());

  frt::Rng rng(args.pipeline.seed);
  frt::Stopwatch watch;
  frt::Result<frt::Dataset> published =
      frt::Status::Internal("not executed");
  std::string method_name;
  frt::RandomizerReport report;
  frt::WindowAuditConfig audit_config;
  audit_config.enabled = true;
  audit_config.shared_index = args.pipeline.shared_index;
  audit_config.strategy = config.strategy;
  audit_config.index_levels = config.index_levels;
  if (args.pipeline.shards > 1) {
    frt::BatchRunnerConfig batch_config;
    batch_config.pipeline = config;
    batch_config.shards = args.pipeline.shards;
    batch_config.threads = args.pipeline.threads;
    batch_config.audit = audit_config;
    frt::BatchRunner runner(batch_config);
    method_name = runner.name();
    published = runner.Anonymize(*dataset, rng);
    if (published.ok()) {
      report = runner.report().combined;
      const frt::BatchReport& batch = runner.report();
      std::fprintf(stderr, "batch: %d shards, eps=%.2f via parallel "
                   "composition\n",
                   batch.shards_run, batch.epsilon_spent);
      std::fprintf(stderr,
                   "shard skew: wall min/mean/max %.3f/%.3f/%.3f s "
                   "(max/mean %.2fx)\n",
                   batch.shard_wall_min, batch.shard_wall_mean,
                   batch.shard_wall_max,
                   batch.shard_wall_mean > 0.0
                       ? batch.shard_wall_max / batch.shard_wall_mean
                       : 0.0);
      frt::cli::PrintAuditReport(batch.audit);
    }
  } else {
    if (args.pipeline.threads != 0) {
      std::fprintf(stderr,
                   "note: --threads has no effect without --shards > 1\n");
    }
    frt::FrequencyRandomizer randomizer(config);
    method_name = randomizer.name();
    published = randomizer.Anonymize(*dataset, rng);
    if (published.ok()) {
      report = randomizer.report();
      frt::cli::PrintAuditReport(frt::RunWindowAudit(
          *dataset, *published, audit_config, /*pool=*/nullptr));
    }
  }
  if (!published.ok()) {
    std::fprintf(stderr, "anonymize: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "%s done in %.1fs: eps=%.2f, |P|=%zu, local edits %zu+/%zu-, "
               "global edits %zu+/%zu-, points %zu -> %zu\n",
               method_name.c_str(), watch.ElapsedSeconds(),
               report.epsilon_spent, report.candidate_set_size,
               report.local.edits.insertions, report.local.edits.deletions,
               report.global.edits.insertions,
               report.global.edits.deletions, dataset->TotalPoints(),
               published->TotalPoints());

  if (auto st = frt::SaveDatasetCsv(*published, args.output); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", args.output.c_str());
  return 0;
}
