#!/usr/bin/env python3
"""Machine-readable perf trail for the index micro-benchmarks.

Runs a google-benchmark binary (or ingests an existing
--benchmark_format=json capture), validates it, and emits a compact
BENCH_*.json report, optionally annotated with speedups against a baseline
report. CI runs this as the bench smoke step and uploads the artifact;
PRs that change the hot path commit the refreshed BENCH_index.json so the
repo carries its own perf history.

Usage:
  tools/bench_report.py --bench build/bench/bench_index_micro \
      [--min-time 0.05] [--filter REGEX] \
      [--baseline BENCH_index.json] [--out BENCH_index.json]
  tools/bench_report.py --input raw_gbench.json [--baseline ...] [--out ...]
"""

import argparse
import json
import subprocess
import sys


def run_bench(bench, min_time, bench_filter):
    """Runs the benchmark binary, returning parsed google-benchmark JSON.

    Older google-benchmark releases take --benchmark_min_time as a bare
    double; newer ones want a "<t>s" suffix. Try suffixed first, fall back.
    """
    base_cmd = [bench, "--benchmark_format=json"]
    if bench_filter:
        base_cmd.append("--benchmark_filter=" + bench_filter)
    for min_time_arg in (f"--benchmark_min_time={min_time}s",
                         f"--benchmark_min_time={min_time}"):
        proc = subprocess.run(base_cmd + [min_time_arg],
                              capture_output=True, text=True)
        if proc.returncode == 0:
            return json.loads(proc.stdout)
    sys.stderr.write(proc.stderr)
    raise SystemExit(f"benchmark run failed: {' '.join(base_cmd)}")


# google-benchmark bookkeeping keys that are not user counters; everything
# numeric outside this set (dist_evals*, items_per_second, the serve
# study's feeds/isolation/deadline counters, ...) is carried into the
# report verbatim.
_GBENCH_BOOKKEEPING = {
    "family_index", "per_family_instance_index", "repetitions",
    "repetition_index", "threads", "iterations", "real_time", "cpu_time",
}


def compact(raw):
    """Flattens google-benchmark JSON into {name: metrics}."""
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            "iterations": b["iterations"],
        }
        if "label" in b:
            entry["label"] = b["label"]
        for key, value in b.items():
            if key in _GBENCH_BOOKKEEPING or not isinstance(
                    value, (int, float)) or isinstance(value, bool):
                continue
            entry[key] = value
        out[b["name"]] = entry
    if not out:
        raise SystemExit("no benchmarks in input — nothing to report")
    return out


def derive_checkpoint_overhead(benchmarks):
    """Surfaces the serve study's paired checkpoint overhead measurement.

    BM_ServeCheckpoint runs the same workload with durable ledgers off and
    on inside every iteration and reports the paired throughput ratio as a
    counter. Returns {"throughput_ratio": on/off, "source": name} or None
    when the report has no such entry. The acceptance claim is
    ratio >= 0.9 (checkpointing costs at most 10%).
    """
    for name, entry in benchmarks.items():
        if "ServeCheckpoint" in name and "checkpoint_throughput_ratio" in entry:
            return {
                "throughput_ratio": round(
                    entry["checkpoint_throughput_ratio"], 3),
                "source": name,
            }
    return None


def derive_trace_overhead(benchmarks):
    """Surfaces the serve study's paired span-tracing overhead measurement.

    BM_ServeTraceOverhead runs the same workload with the trace recorder
    disarmed and armed inside every iteration. Returns
    {"throughput_ratio": armed/disarmed, "source": name} or None when the
    report has no such entry. The acceptance claim is ratio >= 0.97
    (recording spans costs at most ~3%); compiled-in-but-DISABLED tracing
    is covered separately by speedup_vs_baseline on the disarmed half.
    """
    for name, entry in benchmarks.items():
        if "ServeTraceOverhead" in name and "trace_throughput_ratio" in entry:
            return {
                "throughput_ratio": round(
                    entry["trace_throughput_ratio"], 3),
                "source": name,
            }
    return None


def derive_admin_overhead(benchmarks):
    """Surfaces the serve study's paired admin-scrape overhead measurement.

    BM_ServeAdminScrapeOverhead runs the same 16-feed workload with no
    admin listener and with a 10 Hz /metrics + /feedz scraper inside every
    iteration. Returns {"throughput_ratio": scraped/unscraped, "source":
    name} or None when the report has no such entry. The acceptance claim
    is ratio >= 0.99: admin handlers only read registry atomics and
    snapshot copies, so a live scraper is throughput-neutral.
    """
    for name, entry in benchmarks.items():
        if ("ServeAdminScrapeOverhead" in name
                and "admin_scrape_throughput_ratio" in entry):
            return {
                "throughput_ratio": round(
                    entry["admin_scrape_throughput_ratio"], 3),
                "source": name,
            }
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--bench", help="benchmark binary to run")
    source.add_argument("--input",
                        help="existing --benchmark_format=json capture")
    parser.add_argument("--min-time", default="0.05",
                        help="--benchmark_min_time seconds (default 0.05)")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex")
    parser.add_argument("--baseline",
                        help="prior report to compute speedups against "
                             "(its 'benchmarks' section, or a raw capture)")
    parser.add_argument("--out", default="BENCH_index.json",
                        help="report path (default BENCH_index.json)")
    args = parser.parse_args()

    if args.bench:
        raw = run_bench(args.bench, args.min_time, args.filter)
    else:
        with open(args.input) as f:
            raw = json.load(f)

    report = {
        "schema": "frt-bench-report/1",
        "context": {
            key: raw.get("context", {}).get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                        "library_build_type")
        },
        "benchmarks": compact(raw),
    }

    checkpoint = derive_checkpoint_overhead(report["benchmarks"])
    if checkpoint is not None:
        report["checkpoint_overhead"] = checkpoint

    trace = derive_trace_overhead(report["benchmarks"])
    if trace is not None:
        report["trace_overhead"] = trace

    admin = derive_admin_overhead(report["benchmarks"])
    if admin is not None:
        report["admin_overhead"] = admin

    if args.baseline:
        with open(args.baseline) as f:
            base_raw = json.load(f)
        base = (base_raw["benchmarks"]
                if base_raw.get("schema", "").startswith("frt-bench-report")
                else compact(base_raw))
        report["baseline"] = base
        speedups = {}
        for name, entry in report["benchmarks"].items():
            if name in base and base[name]["time_unit"] == entry["time_unit"]:
                speedups[name] = round(
                    base[name]["real_time"] / entry["real_time"], 3)
        report["speedup_vs_baseline"] = speedups

    with open(args.out, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    # Re-read as a parse check before declaring success.
    with open(args.out) as f:
        json.load(f)
    print(f"wrote {args.out} ({len(report['benchmarks'])} benchmarks)")


if __name__ == "__main__":
    main()
